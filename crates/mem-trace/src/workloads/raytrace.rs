//! A ray-tracing kernel (SPLASH-2 Raytrace analog).
//!
//! A large, read-mostly scene (BVH nodes and primitives) is spatially
//! partitioned at first touch; processors trace rays for tiles of the
//! image. Each ray performs an irregular chain of node reads — biased
//! toward the processor's own spatial region, since rays from one tile hit
//! geometry in the same part of the scene — followed by a local framebuffer
//! write. The footprint is large and reuse is poor, mirroring the paper's
//! Raytrace characteristics (32 MB, 29.6 % remote).

// Per-processor generation loops deliberately index by `p`: the index is
// simultaneously the ProcId and the stream slot, and enumerate() would
// obscure that symmetry.
#![allow(clippy::needless_range_loop)]

use super::{Splitmix, Workload, INTERLEAVE_CHUNK};
use crate::phased::{Phase, PhasedTrace};
use crate::record::{ProcId, Trace, TraceRecord};
use cache_sim::Addr;

/// Configuration of [`RaytraceLike`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaytraceLike {
    /// Scene size in 64-byte nodes.
    pub scene_nodes: usize,
    /// Image dimension (square, pixels per side).
    pub image: usize,
    /// Number of processors.
    pub procs: usize,
    /// Nodes visited per ray.
    pub ray_depth: usize,
    /// Probability that a traversal step stays in the processor's own
    /// scene region (~0.72 lands near the paper's 29.6 % remote fraction).
    pub locality_bias: f64,
}

impl Default for RaytraceLike {
    /// Trace-study scale: 4 MB scene, 192×192 image on 8 processors.
    fn default() -> Self {
        RaytraceLike {
            scene_nodes: 64 * 1024,
            image: 224,
            procs: 8,
            ray_depth: 24,
            locality_bias: 0.87,
        }
    }
}

impl RaytraceLike {
    /// The paper's Table-1 configuration: "car" scene, 32 MB.
    #[must_use]
    pub fn paper_scale() -> Self {
        RaytraceLike {
            scene_nodes: 512 * 1024,
            image: 512,
            procs: 8,
            ray_depth: 24,
            locality_bias: 0.87,
        }
    }

    /// The reduced RSIM configuration of Section 4.2: "teapot" scene.
    #[must_use]
    pub fn rsim_scale() -> Self {
        RaytraceLike {
            scene_nodes: 16 * 1024,
            image: 128,
            procs: 16,
            ray_depth: 20,
            locality_bias: 0.87,
        }
    }

    /// Depth of the heap-indexed BVH: nodes are 1..2^depth.
    fn tree_depth(&self) -> u32 {
        self.scene_nodes.max(64).ilog2()
    }

    fn num_nodes(&self) -> usize {
        1 << self.tree_depth()
    }

    fn node_addr(&self, idx: usize) -> Addr {
        Addr((4u64 << 40) + (idx as u64) * 64)
    }

    fn pixel_addr(&self, x: usize, y: usize) -> Addr {
        Addr((5u64 << 40) + ((y * self.image + x) * 16) as u64)
    }

    /// Levels of the BVH that select the owning processor's subtree.
    fn proc_bits(&self) -> u32 {
        self.procs.ilog2()
    }

    /// The home processor of a BVH node (top levels scattered by hash,
    /// subtrees owned by the processor that built that spatial region).
    fn node_owner(&self, idx: usize) -> usize {
        let depth = idx.ilog2();
        let pb = self.proc_bits();
        if depth < pb {
            (idx.wrapping_mul(0x9E37_79B9) >> 5) % self.procs
        } else {
            (idx >> (depth - pb)) & (self.procs - 1)
        }
    }

    /// Image rows rendered by `p` (contiguous horizontal tiles).
    fn rows(&self, p: usize) -> std::ops::Range<usize> {
        let per = self.image / self.procs;
        p * per..(p + 1) * per
    }

    /// Root-to-leaf BVH descent: rays from `p`'s image tile mostly hit
    /// geometry in `p`'s spatial region.
    fn descend<F: FnMut(usize)>(&self, rng: &mut Splitmix, p: usize, mut visit: F) {
        let pb = self.proc_bits();
        let mut idx = 1usize;
        for d in 0..self.tree_depth() {
            visit(idx);
            let own_bit = if d < pb {
                (p >> (pb - 1 - d)) & 1
            } else {
                rng.below(2) as usize
            };
            let bit = if d < pb && !rng.chance(self.locality_bias) {
                rng.below(2) as usize
            } else {
                own_bit
            };
            idx = idx * 2 + bit;
        }
    }
}

impl Workload for RaytraceLike {
    fn name(&self) -> &'static str {
        "raytrace"
    }

    fn problem_size(&self) -> String {
        format!("{} MB scene", self.scene_nodes * 64 / (1024 * 1024))
    }

    fn num_procs(&self) -> usize {
        self.procs
    }

    fn generate(&self, seed: u64) -> Trace {
        self.generate_phases(seed).interleave(INTERLEAVE_CHUNK)
    }

    fn generate_phases(&self, seed: u64) -> PhasedTrace {
        let mut pt = PhasedTrace::new(self.procs);

        // Scene build: each node is written by its owner (spatially
        // partitioned preprocessing; establishes first touch).
        let mut init: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
        for n in 1..self.num_nodes() {
            let p = self.node_owner(n);
            init[p].push(TraceRecord::write(ProcId(p), self.node_addr(n)));
        }
        pt.push(Phase::from_streams(init));

        // Rendering: one ray per pixel; each ray descends the BVH until it
        // has visited `ray_depth` nodes, then writes its pixel.
        let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
        for p in 0..self.procs {
            let proc = ProcId(p);
            let mut rng = Splitmix::new(seed ^ (p as u64) << 16 ^ 0x7EA);
            let out = &mut phase[p];
            for y in self.rows(p) {
                for x in 0..self.image {
                    // Consecutive rays share their path prefix (spatial
                    // coherence): re-seed only every 4 pixels.
                    if x % 4 == 0 {
                        rng = Splitmix::new(seed ^ ((y * self.image + x) as u64) << 8 ^ (p as u64));
                    }
                    let mut emitted = 0usize;
                    while emitted < self.ray_depth {
                        self.descend(&mut rng, p, |n| {
                            if emitted < self.ray_depth {
                                out.push(TraceRecord::read(proc, self.node_addr(n)));
                                emitted += 1;
                            }
                        });
                    }
                    out.push(TraceRecord::write(proc, self.pixel_addr(x, y)));
                }
            }
        }
        pt.push(Phase::from_streams(phase));
        pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_touch::FirstTouchPlacement;

    fn small() -> RaytraceLike {
        RaytraceLike {
            scene_nodes: 4096,
            image: 32,
            procs: 4,
            ray_depth: 12,
            locality_bias: 0.87,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = small();
        assert_eq!(w.generate(5).records()[500], w.generate(5).records()[500]);
    }

    #[test]
    fn remote_fraction_is_around_a_third() {
        let w = small();
        let t = w.generate(2);
        let placement = FirstTouchPlacement::from_trace(64, &t);
        let f = placement.remote_fraction(&t, ProcId(2));
        // Paper (Table 1): 29.6 % for Raytrace.
        assert!(f > 0.15 && f < 0.45, "remote fraction {f}");
    }

    #[test]
    fn reads_dominate() {
        let w = small();
        let t = w.generate(2);
        let reads = t
            .iter()
            .filter(|r| r.op == cache_sim::AccessType::Read)
            .count();
        let writes = t.len() - reads;
        // The one-off scene-build phase is all writes; rendering is
        // read-dominated, so reads still outnumber writes clearly.
        assert!(
            reads > writes * 2,
            "read-mostly: {reads} reads vs {writes} writes"
        );
    }

    #[test]
    fn rows_partition_image() {
        let w = small();
        let total: usize = (0..w.procs).map(|p| w.rows(p).len()).sum();
        assert_eq!(total, w.image);
    }
}
