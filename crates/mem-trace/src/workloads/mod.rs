//! Synthetic SPLASH-2-like workload kernels.
//!
//! The paper traces four SPLASH-2 benchmarks (Table 1). The original
//! SPARC binaries and their execution-driven tracing infrastructure are not
//! reproducible here, so this module provides synthetic kernels that emit
//! shared-data reference streams with the same *structural* properties the
//! replacement study depends on: locality profile, sharing and invalidation
//! traffic, per-set imbalance, and first-touch remote-access fraction.
//!
//! | Kernel | Mirrors | Character |
//! |--------|---------|-----------|
//! | [`BarnesLike`] | Barnes | irregular, data-dependent octree walks, high remote fraction |
//! | [`LuLike`] | LU | blocked dense factorization, high locality, strong set imbalance |
//! | [`OceanLike`] | Ocean | regular grid stencils, low remote fraction |
//! | [`RaytraceLike`] | Raytrace | read-mostly irregular scene traversal, large footprint |
//!
//! All kernels are deterministic given a seed and implement [`Workload`].

use crate::phased::{Phase, PhasedTrace};
use crate::record::{Trace, TraceRecord};

mod barnes;
mod fft;
mod lu;
mod ocean;
mod radix;
mod raytrace;
pub mod synthetic;

pub use barnes::BarnesLike;
pub use fft::FftLike;
pub use lu::LuLike;
pub use ocean::OceanLike;
pub use radix::RadixLike;
pub use raytrace::RaytraceLike;

/// Chunk size used when flattening phases into a single trace.
pub(crate) const INTERLEAVE_CHUNK: usize = 64;

/// Creates the interleaver used to flatten phased traces (shared with
/// [`PhasedTrace::interleave`]).
pub(crate) fn interleaver(chunk: usize) -> Interleaver {
    Interleaver::new(chunk)
}

/// A workload kernel that can generate a multiprocessor reference trace.
pub trait Workload {
    /// Short name ("barnes", "lu", …).
    fn name(&self) -> &'static str;

    /// Human-readable problem-size description (Table 1 style).
    fn problem_size(&self) -> String;

    /// Number of processors in the traced machine.
    fn num_procs(&self) -> usize;

    /// Generates the trace. Deterministic for a given `seed`.
    fn generate(&self, seed: u64) -> Trace;

    /// Generates the barrier-delimited per-processor streams that
    /// execution-driven simulation replays ([`PhasedTrace`]).
    ///
    /// The default implementation wraps the flat trace into a single phase
    /// (adequate for workloads without barrier structure); the SPLASH-like
    /// kernels override it with their real phase structure.
    fn generate_phases(&self, seed: u64) -> PhasedTrace {
        let trace = self.generate(seed);
        let mut phase = Phase::new(self.num_procs());
        for rec in &trace {
            phase.streams[rec.proc.0].push(*rec);
        }
        let mut pt = PhasedTrace::new(self.num_procs());
        pt.push(phase);
        pt
    }
}

/// Merges per-processor record streams into one global order by
/// round-robining fixed-size chunks, approximating concurrent execution
/// between barriers.
#[derive(Debug)]
pub(crate) struct Interleaver {
    chunk: usize,
}

impl Interleaver {
    pub(crate) fn new(chunk: usize) -> Self {
        assert!(chunk > 0, "chunk must be nonzero");
        Interleaver { chunk }
    }

    /// Appends the interleaving of `streams` to `trace`.
    pub(crate) fn merge_into(&self, trace: &mut Trace, streams: &[Vec<TraceRecord>]) {
        let mut cursors = vec![0usize; streams.len()];
        loop {
            let mut progressed = false;
            for (s, cursor) in cursors.iter_mut().enumerate() {
                let stream = &streams[s];
                if *cursor < stream.len() {
                    let end = (*cursor + self.chunk).min(stream.len());
                    for rec in &stream[*cursor..end] {
                        trace.push(*rec);
                    }
                    *cursor = end;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

/// The kernels' data-dependent access patterns draw from the workspace's
/// internal [`SplitMix64`](crate::rng::SplitMix64) generator, keeping
/// streams reproducible without the `rand` crate's version-dependent
/// stream definitions.
pub(crate) use crate::rng::SplitMix64 as Splitmix;

/// The standard four-kernel suite at trace-study scale (Section 3 analog).
#[must_use]
pub fn standard_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(BarnesLike::default()),
        Box::new(LuLike::default()),
        Box::new(OceanLike::default()),
        Box::new(RaytraceLike::default()),
    ]
}

/// The extended suite: the standard four kernels plus the FFT and Radix
/// analogues the paper's footnote 2 ran ("yielded no additional insight").
#[must_use]
pub fn extended_suite() -> Vec<Box<dyn Workload>> {
    let mut suite = standard_suite();
    suite.push(Box::new(FftLike::default()));
    suite.push(Box::new(RadixLike::default()));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ProcId;
    use cache_sim::Addr;

    #[test]
    fn interleaver_round_robins_chunks() {
        let mut trace = Trace::new(2);
        let s0: Vec<TraceRecord> = (0..4)
            .map(|i| TraceRecord::read(ProcId(0), Addr(i * 64)))
            .collect();
        let s1: Vec<TraceRecord> = (0..2)
            .map(|i| TraceRecord::read(ProcId(1), Addr(0x1000 + i * 64)))
            .collect();
        Interleaver::new(2).merge_into(&mut trace, &[s0, s1]);
        let procs: Vec<usize> = trace.iter().map(|r| r.proc.0).collect();
        assert_eq!(procs, vec![0, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = Splitmix::new(5);
        let mut b = Splitmix::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            seen.insert(x % 10);
        }
        assert!(seen.len() >= 8, "values should spread across residues");
    }

    #[test]
    fn chance_probability_sane() {
        let mut rng = Splitmix::new(99);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn standard_suite_has_four_kernels() {
        let suite = standard_suite();
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["barnes", "lu", "ocean", "raytrace"]);
    }
}
