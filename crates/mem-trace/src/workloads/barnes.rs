//! An N-body tree-code kernel (SPLASH-2 Barnes analog).
//!
//! Bodies are chunk-partitioned across processors; tree cells are shared
//! and touched by data-dependent, irregular walks. Each timestep rebuilds
//! part of the tree (writes to shared cells) and computes forces (long
//! read walks over cells plus read-modify-writes of the processor's own
//! bodies). Cell walks are only weakly biased toward the processor's own
//! spatial region, giving the high remote-access fraction the paper
//! reports for Barnes (44.8 %).

// Per-processor generation loops deliberately index by `p`: the index is
// simultaneously the ProcId and the stream slot, and enumerate() would
// obscure that symmetry.
#![allow(clippy::needless_range_loop)]

use super::{Splitmix, Workload, INTERLEAVE_CHUNK};
use crate::phased::{Phase, PhasedTrace};
use crate::record::{ProcId, Trace, TraceRecord};
use cache_sim::Addr;

/// Configuration of [`BarnesLike`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarnesLike {
    /// Number of bodies.
    pub bodies: usize,
    /// Number of processors.
    pub procs: usize,
    /// Simulated timesteps.
    pub steps: usize,
    /// Cells touched per force walk.
    pub walk_len: usize,
    /// Probability that a top-level branch choice descends toward the
    /// processor's own subtree (tunes the remote fraction; ~0.68 lands near
    /// Table 1's 44.8 %).
    pub locality_bias: f64,
}

impl Default for BarnesLike {
    /// Trace-study scale: 16 K bodies on 8 processors.
    fn default() -> Self {
        BarnesLike {
            bodies: 16 * 1024,
            procs: 8,
            steps: 4,
            walk_len: 24,
            locality_bias: 0.68,
        }
    }
}

impl BarnesLike {
    /// The paper's Table-1 configuration: 64 K bodies.
    #[must_use]
    pub fn paper_scale() -> Self {
        BarnesLike {
            bodies: 64 * 1024,
            procs: 8,
            steps: 4,
            walk_len: 24,
            locality_bias: 0.68,
        }
    }

    /// The reduced RSIM configuration of Section 4.2: 4 K bodies.
    #[must_use]
    pub fn rsim_scale() -> Self {
        BarnesLike {
            bodies: 4 * 1024,
            procs: 16,
            steps: 3,
            walk_len: 24,
            locality_bias: 0.68,
        }
    }

    /// Depth of the (binary-heap-indexed) tree: cells are nodes 1..2^depth.
    fn tree_depth(&self) -> u32 {
        ((self.bodies / 2).max(64)).ilog2()
    }

    fn num_cells(&self) -> usize {
        1 << self.tree_depth()
    }

    /// Bodies region: 128 bytes per body (two cache blocks).
    fn body_addr(&self, idx: usize, half: usize) -> Addr {
        Addr((1u64 << 40) + (idx as u64) * 128 + (half as u64) * 64)
    }

    /// Cells region: 128 bytes per cell.
    fn cell_addr(&self, idx: usize, half: usize) -> Addr {
        Addr((2u64 << 40) + (idx as u64) * 128 + (half as u64) * 64)
    }

    /// Bodies owned by processor `p` (contiguous chunks).
    fn body_range(&self, p: usize) -> std::ops::Range<usize> {
        let per = self.bodies / self.procs;
        p * per..(p + 1) * per
    }

    /// Levels of the tree that select the owning processor's subtree.
    fn proc_bits(&self) -> u32 {
        self.procs.ilog2()
    }

    /// The home processor of a cell: top-of-tree cells are scattered by
    /// hash; cells inside a processor subtree belong to that processor.
    fn cell_owner(&self, idx: usize) -> usize {
        let depth = idx.ilog2(); // heap depth of node `idx` (root = 1)
        let pb = self.proc_bits();
        if depth < pb {
            // Shared top levels: pseudo-random home.
            (idx.wrapping_mul(0x9E37_79B9) >> 7) % self.procs
        } else {
            // The subtree is identified by the first `pb` branch choices.
            (idx >> (depth - pb)) & (self.procs - 1)
        }
    }

    /// Descends the tree from the root, emitting one cell per level. Branch
    /// choices are biased toward the processor's own subtree with
    /// probability `locality_bias`, mimicking bodies clustered in the
    /// processor's spatial region.
    fn walk<F: FnMut(usize)>(&self, rng: &mut Splitmix, p: usize, depth: u32, mut visit: F) {
        let pb = self.proc_bits();
        let mut idx = 1usize;
        for d in 0..depth.min(self.tree_depth()) {
            visit(idx);
            let own_bit = if d < pb {
                (p >> (pb - 1 - d)) & 1
            } else {
                rng.below(2) as usize
            };
            let bit = if d < pb && !rng.chance(self.locality_bias) {
                rng.below(2) as usize
            } else {
                own_bit
            };
            idx = idx * 2 + bit;
        }
    }
}

impl Workload for BarnesLike {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn problem_size(&self) -> String {
        format!("{}K bodies", self.bodies / 1024)
    }

    fn num_procs(&self) -> usize {
        self.procs
    }

    fn generate(&self, seed: u64) -> Trace {
        self.generate_phases(seed).interleave(INTERLEAVE_CHUNK)
    }

    fn generate_phases(&self, seed: u64) -> PhasedTrace {
        let mut pt = PhasedTrace::new(self.procs);

        // Initialization: owners write their bodies and the tree cells they
        // home (first touch).
        let mut init: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
        for p in 0..self.procs {
            let proc = ProcId(p);
            for b in self.body_range(p) {
                init[p].push(TraceRecord::write(proc, self.body_addr(b, 0)));
                init[p].push(TraceRecord::write(proc, self.body_addr(b, 1)));
            }
        }
        for c in 1..self.num_cells() {
            let p = self.cell_owner(c);
            init[p].push(TraceRecord::write(ProcId(p), self.cell_addr(c, 0)));
        }
        pt.push(Phase::from_streams(init));

        let full_depth = self.tree_depth();
        let build_depth = (self.proc_bits() + 5).min(full_depth);
        for step in 0..self.steps {
            // Tree build: each processor re-inserts a sample of its bodies,
            // reading and writing the cells along the insertion path.
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for p in 0..self.procs {
                let proc = ProcId(p);
                let mut rng = Splitmix::new(seed ^ (step as u64) << 32 ^ (p as u64) << 8 ^ 0xB);
                let out = &mut phase[p];
                for b in self.body_range(p).step_by(4) {
                    out.push(TraceRecord::read(proc, self.body_addr(b, 0)));
                    self.walk(&mut rng, p, build_depth, |c| {
                        out.push(TraceRecord::read(proc, self.cell_addr(c, 0)));
                        out.push(TraceRecord::write(proc, self.cell_addr(c, 0)));
                    });
                }
            }
            pt.push(Phase::from_streams(phase));

            // Force computation: each body performs `walk_len` cell reads as
            // root-to-leaf descents (hot top levels, cold deep levels), then
            // updates the body.
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for p in 0..self.procs {
                let proc = ProcId(p);
                let mut rng = Splitmix::new(seed ^ (step as u64) << 32 ^ (p as u64) << 8 ^ 0xF);
                let out = &mut phase[p];
                for b in self.body_range(p) {
                    out.push(TraceRecord::read(proc, self.body_addr(b, 0)));
                    let mut emitted = 0usize;
                    while emitted < self.walk_len {
                        self.walk(&mut rng, p, full_depth, |c| {
                            if emitted < self.walk_len {
                                out.push(TraceRecord::read(proc, self.cell_addr(c, c & 1)));
                                emitted += 1;
                            }
                        });
                    }
                    out.push(TraceRecord::write(proc, self.body_addr(b, 1)));
                }
            }
            pt.push(Phase::from_streams(phase));
        }
        pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_touch::FirstTouchPlacement;

    fn small() -> BarnesLike {
        BarnesLike {
            bodies: 1024,
            procs: 4,
            steps: 2,
            walk_len: 12,
            locality_bias: 0.68,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = small();
        let a = w.generate(3);
        let b = w.generate(3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.records()[1000], b.records()[1000]);
    }

    #[test]
    fn different_seeds_differ() {
        let w = small();
        let a = w.generate(3);
        let b = w.generate(4);
        let differs = a.iter().zip(b.iter()).any(|(x, y)| x.addr != y.addr);
        assert!(differs);
    }

    #[test]
    fn remote_fraction_is_high() {
        let w = small();
        let t = w.generate(1);
        let placement = FirstTouchPlacement::from_trace(64, &t);
        let f = placement.remote_fraction(&t, ProcId(1));
        // Paper (Table 1): 44.8 % for Barnes.
        assert!(f > 0.30 && f < 0.60, "remote fraction {f}");
    }

    #[test]
    fn bodies_partitioned_evenly() {
        let w = small();
        assert_eq!(w.body_range(0), 0..256);
        assert_eq!(w.body_range(3), 768..1024);
    }
}
