//! A parallel radix-sort kernel (SPLASH-2 Radix analog).
//!
//! The paper's footnote 2 reports that Radix (with Water, MP3D and FFT) was
//! also run but "yielded no additional insight"; it is included here for
//! completeness of the suite. Each digit pass builds per-processor
//! histograms (local), combines them into global ranks (small all-to-all
//! reads), then permutes keys to their destinations — scattered, mostly
//! remote writes with essentially no reuse, the worst case for any
//! replacement policy.

// Per-processor generation loops deliberately index by `p`: the index is
// simultaneously the ProcId and the stream slot, and enumerate() would
// obscure that symmetry.
#![allow(clippy::needless_range_loop)]

use super::{Splitmix, Workload, INTERLEAVE_CHUNK};
use crate::phased::{Phase, PhasedTrace};
use crate::record::{ProcId, Trace, TraceRecord};
use cache_sim::Addr;

/// Configuration of [`RadixLike`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixLike {
    /// Number of keys sorted.
    pub keys: usize,
    /// Number of processors.
    pub procs: usize,
    /// Radix digit width in bits per pass.
    pub digit_bits: u32,
    /// Number of digit passes.
    pub passes: usize,
    /// Sampling stride over keys (1 = trace every key access).
    pub key_stride: usize,
}

impl Default for RadixLike {
    /// Trace-study scale: 256 K integer keys on 8 processors.
    fn default() -> Self {
        RadixLike {
            keys: 256 * 1024,
            procs: 8,
            digit_bits: 8,
            passes: 2,
            key_stride: 4,
        }
    }
}

impl RadixLike {
    /// A larger configuration matching the trace-study reference counts.
    #[must_use]
    pub fn paper_scale() -> Self {
        RadixLike {
            keys: 1024 * 1024,
            procs: 8,
            digit_bits: 8,
            passes: 3,
            key_stride: 2,
        }
    }

    /// A reduced configuration for the execution-driven machine.
    #[must_use]
    pub fn rsim_scale() -> Self {
        RadixLike {
            keys: 64 * 1024,
            procs: 16,
            digit_bits: 8,
            passes: 2,
            key_stride: 4,
        }
    }

    fn radix(&self) -> usize {
        1 << self.digit_bits
    }

    /// Source key array of pass `p` (double-buffered between passes).
    fn key_addr(&self, pass: usize, idx: usize) -> Addr {
        Addr((((6 + (pass & 1)) as u64) << 40) | ((idx as u64) * 8))
    }

    /// Per-processor histogram bucket.
    fn hist_addr(&self, proc: usize, bucket: usize) -> Addr {
        Addr((8u64 << 40) | (((proc * self.radix() + bucket) as u64) * 8))
    }

    fn chunk(&self, p: usize) -> std::ops::Range<usize> {
        let per = self.keys / self.procs;
        p * per..(p + 1) * per
    }

    /// The pseudo-random key value at initial index `idx`.
    fn key_value(&self, idx: usize, seed: u64) -> u64 {
        let mut rng = Splitmix::new(seed ^ (idx as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        rng.next_u64()
    }
}

impl Workload for RadixLike {
    fn name(&self) -> &'static str {
        "radix"
    }

    fn problem_size(&self) -> String {
        format!("{}K keys", self.keys / 1024)
    }

    fn num_procs(&self) -> usize {
        self.procs
    }

    fn generate(&self, seed: u64) -> Trace {
        self.generate_phases(seed).interleave(INTERLEAVE_CHUNK)
    }

    fn generate_phases(&self, seed: u64) -> PhasedTrace {
        let mut pt = PhasedTrace::new(self.procs);
        let stride = self.key_stride.max(1);
        let radix_mask = (self.radix() - 1) as u64;

        // Initialization: owners write their key chunks (first touch).
        let mut init: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
        for p in 0..self.procs {
            let proc = ProcId(p);
            for i in self.chunk(p).step_by(stride) {
                init[p].push(TraceRecord::write(proc, self.key_addr(0, i)));
            }
        }
        pt.push(Phase::from_streams(init));

        for pass in 0..self.passes {
            let shift = (pass as u32) * self.digit_bits;

            // Phase 1: local histograms (read own keys, bump own buckets).
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for p in 0..self.procs {
                let proc = ProcId(p);
                let out = &mut phase[p];
                for i in self.chunk(p).step_by(stride) {
                    out.push(TraceRecord::read(proc, self.key_addr(pass, i)));
                    let bucket = ((self.key_value(i, seed) >> shift) & radix_mask) as usize;
                    let h = self.hist_addr(p, bucket);
                    out.push(TraceRecord::read(proc, h));
                    out.push(TraceRecord::write(proc, h));
                }
            }
            pt.push(Phase::from_streams(phase));

            // Phase 2: global rank computation — every processor scans all
            // histograms (remote reads of small shared data).
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for p in 0..self.procs {
                let proc = ProcId(p);
                let out = &mut phase[p];
                for other in 0..self.procs {
                    for bucket in (0..self.radix()).step_by(8) {
                        out.push(TraceRecord::read(proc, self.hist_addr(other, bucket)));
                    }
                }
            }
            pt.push(Phase::from_streams(phase));

            // Phase 3: permutation — read own keys, write them to their
            // globally-ranked position (scattered, mostly remote).
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for p in 0..self.procs {
                let proc = ProcId(p);
                let out = &mut phase[p];
                for i in self.chunk(p).step_by(stride) {
                    out.push(TraceRecord::read(proc, self.key_addr(pass, i)));
                    // Destination ≈ digit-ordered position: deterministic
                    // scatter derived from the key value.
                    let digit = (self.key_value(i, seed) >> shift) & radix_mask;
                    let dest = ((digit * self.keys as u64) / self.radix() as u64) as usize
                        + (self.key_value(i, seed ^ 0xD157) % (self.keys / self.radix()) as u64)
                            as usize;
                    out.push(TraceRecord::write(
                        proc,
                        self.key_addr(pass + 1, dest.min(self.keys - 1)),
                    ));
                }
            }
            pt.push(Phase::from_streams(phase));
        }
        pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_touch::FirstTouchPlacement;

    fn small() -> RadixLike {
        RadixLike {
            keys: 8192,
            procs: 4,
            digit_bits: 6,
            passes: 2,
            key_stride: 2,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = small();
        assert_eq!(w.generate(3).records()[100], w.generate(3).records()[100]);
        assert_eq!(w.generate(3).len(), w.generate(3).len());
    }

    #[test]
    fn permutation_writes_are_scattered() {
        // The permutation phase writes mostly outside the writer's own
        // chunk: high remote-write traffic.
        let w = small();
        let t = w.generate(1);
        let placement = FirstTouchPlacement::from_trace(64, &t);
        let f = placement.remote_fraction(&t, ProcId(2));
        assert!(f > 0.2, "radix should be remote-heavy, got {f}");
    }

    #[test]
    fn phases_follow_the_three_step_pattern() {
        let w = small();
        let pt = w.generate_phases(1);
        // init + passes * (histogram, rank, permute)
        assert_eq!(pt.phases().len(), 1 + w.passes * 3);
    }
}
