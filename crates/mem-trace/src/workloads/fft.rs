//! A six-step FFT kernel (SPLASH-2 FFT analog).
//!
//! Like Radix, FFT appears in the paper's footnote 2 ("yielded no
//! additional insight") and is provided for suite completeness. The √N×√N
//! data matrix is row-banded across processors: local row FFTs stream over
//! owned data, while the all-to-all transpose steps read column blocks from
//! every other processor — bursty remote traffic with blocked locality.

// Per-processor generation loops deliberately index by `p`: the index is
// simultaneously the ProcId and the stream slot, and enumerate() would
// obscure that symmetry.
#![allow(clippy::needless_range_loop)]

use super::{Workload, INTERLEAVE_CHUNK};
use crate::phased::{Phase, PhasedTrace};
use crate::record::{ProcId, Trace, TraceRecord};
use cache_sim::Addr;

/// Configuration of [`FftLike`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftLike {
    /// Matrix side (the transform has `side * side` complex points).
    pub side: usize,
    /// Number of processors (must divide `side`).
    pub procs: usize,
    /// Element sampling stride.
    pub stride: usize,
}

impl Default for FftLike {
    /// Trace-study scale: 256×256 complex points on 8 processors.
    fn default() -> Self {
        FftLike {
            side: 256,
            procs: 8,
            stride: 2,
        }
    }
}

impl FftLike {
    /// A larger configuration matching the trace-study reference counts.
    #[must_use]
    pub fn paper_scale() -> Self {
        FftLike {
            side: 512,
            procs: 8,
            stride: 1,
        }
    }

    /// A reduced configuration for the execution-driven machine.
    #[must_use]
    pub fn rsim_scale() -> Self {
        FftLike {
            side: 128,
            procs: 16,
            stride: 2,
        }
    }

    /// A matrix element (16 bytes: complex double).
    fn elem(&self, mat: usize, row: usize, col: usize) -> Addr {
        Addr((((10 + mat) as u64) << 40) | (((row * self.side + col) as u64) * 16))
    }

    fn rows(&self, p: usize) -> std::ops::Range<usize> {
        let per = self.side / self.procs;
        p * per..(p + 1) * per
    }

    /// Emits one local row-FFT pass over matrix `mat` for processor `p`:
    /// log2(side) butterfly sweeps, sampled.
    fn row_fft(&self, out: &mut Vec<TraceRecord>, p: usize, mat: usize) {
        let proc = ProcId(p);
        let stages = self.side.ilog2().min(3); // sampled butterfly depth
        for row in self.rows(p) {
            for stage in 0..stages {
                let span = 1usize << stage;
                for col in (0..self.side - span).step_by(self.stride.max(1) * 2) {
                    let a = self.elem(mat, row, col);
                    let b = self.elem(mat, row, col + span);
                    out.push(TraceRecord::read(proc, a));
                    out.push(TraceRecord::read(proc, b));
                    out.push(TraceRecord::write(proc, a));
                    out.push(TraceRecord::write(proc, b));
                }
            }
        }
    }

    /// Emits the all-to-all transpose: `p` reads the column block owned by
    /// every processor and writes it into its own rows of the other matrix.
    fn transpose(&self, out: &mut Vec<TraceRecord>, p: usize, from: usize, to: usize) {
        let proc = ProcId(p);
        let my_rows = self.rows(p);
        // The transpose touches every element (unsampled): it is the dense
        // all-to-all communication step of the six-step algorithm.
        for other in 0..self.procs {
            for src_row in self.rows(other) {
                for dst_row in my_rows.clone() {
                    // Element (src_row, dst_row) of `from` becomes
                    // (dst_row, src_row) of `to`.
                    out.push(TraceRecord::read(proc, self.elem(from, src_row, dst_row)));
                    out.push(TraceRecord::write(proc, self.elem(to, dst_row, src_row)));
                }
            }
        }
    }
}

impl Workload for FftLike {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn problem_size(&self) -> String {
        format!("{}x{} points", self.side, self.side)
    }

    fn num_procs(&self) -> usize {
        self.procs
    }

    fn generate(&self, seed: u64) -> Trace {
        self.generate_phases(seed).interleave(INTERLEAVE_CHUNK)
    }

    fn generate_phases(&self, _seed: u64) -> PhasedTrace {
        assert!(
            self.side.is_multiple_of(self.procs),
            "processors must divide the matrix side"
        );
        let mut pt = PhasedTrace::new(self.procs);
        let stride = self.stride.max(1);

        // Initialization: owners write their row bands of matrix 0.
        let mut init: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
        for p in 0..self.procs {
            let proc = ProcId(p);
            for row in self.rows(p) {
                for col in (0..self.side).step_by(stride) {
                    init[p].push(TraceRecord::write(proc, self.elem(0, row, col)));
                }
            }
        }
        pt.push(Phase::from_streams(init));

        // Six-step FFT: FFT rows, transpose, FFT rows, transpose back, FFT.
        let steps: [(usize, Option<(usize, usize)>); 5] = [
            (0, None),
            (0, Some((0, 1))),
            (1, None),
            (1, Some((1, 0))),
            (0, None),
        ];
        for (mat, transpose) in steps {
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for p in 0..self.procs {
                match transpose {
                    None => self.row_fft(&mut phase[p], p, mat),
                    Some((from, to)) => self.transpose(&mut phase[p], p, from, to),
                }
            }
            pt.push(Phase::from_streams(phase));
        }
        pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_touch::FirstTouchPlacement;

    fn small() -> FftLike {
        FftLike {
            side: 64,
            procs: 4,
            stride: 2,
        }
    }

    #[test]
    fn deterministic() {
        let w = small();
        assert_eq!(w.generate(1).len(), w.generate(2).len());
    }

    #[test]
    fn transpose_is_remote_heavy() {
        let w = small();
        let t = w.generate(0);
        let placement = FirstTouchPlacement::from_trace(64, &t);
        let f = placement.remote_fraction(&t, ProcId(1));
        // (procs-1)/procs of the transpose reads are remote; FFT rows local.
        assert!(f > 0.08 && f < 0.5, "remote fraction {f}");
    }

    #[test]
    fn phase_structure() {
        let w = small();
        let pt = w.generate_phases(0);
        assert_eq!(pt.phases().len(), 6); // init + 5 six-step phases
    }
}
