//! A red-black grid relaxation kernel (SPLASH-2 Ocean analog).
//!
//! Several N×N grids are band-partitioned by rows across processors. Each
//! iteration performs 5-point stencil sweeps: every update reads the four
//! neighbours and read-modify-writes the centre. Only the first and last
//! rows of a band read another processor's rows, giving the low remote
//! fraction the paper reports for Ocean (7.4 %).

// Per-processor generation loops deliberately index by `p`: the index is
// simultaneously the ProcId and the stream slot, and enumerate() would
// obscure that symmetry.
#![allow(clippy::needless_range_loop)]

use super::{Workload, INTERLEAVE_CHUNK};
use crate::phased::{Phase, PhasedTrace};
use crate::record::{ProcId, Trace, TraceRecord};
use cache_sim::Addr;

/// Configuration of [`OceanLike`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OceanLike {
    /// Grid dimension (points per side).
    pub n: usize,
    /// Number of grids cycled through (Ocean keeps ~25 live grids; several
    /// are enough to reproduce the footprint-to-reuse ratio).
    pub grids: usize,
    /// Number of processors (must divide the interior rows reasonably).
    pub procs: usize,
    /// Relaxation iterations.
    pub iters: usize,
    /// Sampling stride over columns (1 = trace every point).
    pub col_stride: usize,
    /// Global points each processor reads per iteration in the reduction
    /// phase (error norms / multigrid restriction read data from every
    /// band; this is Ocean's main source of remote traffic).
    pub reduction_points: usize,
}

impl Default for OceanLike {
    /// Trace-study scale: 258×258, 16 processors (Table 1 row for Ocean).
    fn default() -> Self {
        OceanLike {
            n: 258,
            grids: 6,
            procs: 16,
            iters: 8,
            col_stride: 1,
            reduction_points: 1536,
        }
    }
}

impl OceanLike {
    /// The paper's Table-1 configuration.
    #[must_use]
    pub fn paper_scale() -> Self {
        OceanLike {
            n: 258,
            grids: 6,
            procs: 16,
            iters: 16,
            col_stride: 1,
            reduction_points: 1536,
        }
    }

    /// The reduced RSIM configuration of Section 4.2: 130×130.
    #[must_use]
    pub fn rsim_scale() -> Self {
        OceanLike {
            n: 130,
            grids: 6,
            procs: 16,
            iters: 6,
            col_stride: 1,
            reduction_points: 400,
        }
    }

    fn grid_base(&self, g: usize) -> u64 {
        (g as u64) << 32
    }

    fn point_addr(&self, g: usize, row: usize, col: usize) -> Addr {
        Addr(self.grid_base(g) + ((row * self.n + col) * 8) as u64)
    }

    /// Address of a point in multigrid level `l` (side `self.n >> l`).
    fn coarse_addr(&self, level: usize, row: usize, col: usize) -> Addr {
        let side = self.n >> level;
        Addr(((self.grids + level) as u64) << 32 | ((row * side + col) * 8) as u64)
    }

    /// Address of a point in the read-only coefficient (topography) grid,
    /// written once during initialization and read by every processor in
    /// each iteration's reduction phase.
    fn coeff_addr(&self, row: usize, col: usize) -> Addr {
        Addr(((self.grids + 8) as u64) << 32 | ((row * self.n + col) * 8) as u64)
    }

    /// The fixed lattice of coefficient points sampled by the reduction
    /// phase (identical every iteration, so the reads have cross-iteration
    /// reuse).
    fn reduction_lattice(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let total = (self.n * self.n) as u64;
        (0..self.reduction_points).map(move |k| {
            let idx = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % total;
            (
                (idx / self.n as u64) as usize,
                (idx % self.n as u64) as usize,
            )
        })
    }

    /// Rows of the band of an `n`-row grid owned by `p`.
    fn band_of(n: usize, procs: usize, p: usize) -> (usize, usize) {
        let interior = n.saturating_sub(2);
        let per = interior / procs;
        let extra = interior % procs;
        let start = 1 + p * per + p.min(extra);
        let len = per + usize::from(p < extra);
        (start, start + len)
    }

    /// Rows of the band owned by `p` (interior rows split evenly).
    fn band(&self, p: usize) -> (usize, usize) {
        Self::band_of(self.n, self.procs, p)
    }
}

impl Workload for OceanLike {
    fn name(&self) -> &'static str {
        "ocean"
    }

    fn problem_size(&self) -> String {
        format!("{0} x {0}", self.n)
    }

    fn num_procs(&self) -> usize {
        self.procs
    }

    fn generate(&self, seed: u64) -> Trace {
        self.generate_phases(seed).interleave(INTERLEAVE_CHUNK)
    }

    fn generate_phases(&self, _seed: u64) -> PhasedTrace {
        let mut pt = PhasedTrace::new(self.procs);
        let stride = self.col_stride.max(1);

        // Initialization: each processor writes its band of every grid
        // (first touch homes the bands correctly).
        let mut init: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
        for g in 0..self.grids {
            for p in 0..self.procs {
                let proc = ProcId(p);
                let (lo, hi) = self.band(p);
                // Band owners also home their adjacent boundary rows.
                let lo = if p == 0 { 0 } else { lo };
                let hi = if p == self.procs - 1 { self.n } else { hi };
                for row in lo..hi {
                    for col in (0..self.n).step_by(stride) {
                        init[p].push(TraceRecord::write(proc, self.point_addr(g, row, col)));
                    }
                }
            }
        }
        // Coefficient grid: written once, band-homed, read-only afterwards.
        for p in 0..self.procs {
            let proc = ProcId(p);
            let (lo, hi) = self.band(p);
            let lo = if p == 0 { 0 } else { lo };
            let hi = if p == self.procs - 1 { self.n } else { hi };
            for row in lo..hi {
                for col in (0..self.n).step_by(stride) {
                    init[p].push(TraceRecord::write(proc, self.coeff_addr(row, col)));
                }
            }
        }
        pt.push(Phase::from_streams(init));

        // Relaxation sweeps: alternate source/destination grids.
        for it in 0..self.iters {
            let src = it % self.grids;
            let dst = (it + 1) % self.grids;
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for p in 0..self.procs {
                let proc = ProcId(p);
                let (lo, hi) = self.band(p);
                let out = &mut phase[p];
                for row in lo..hi {
                    for col in (1..self.n - 1).step_by(stride) {
                        // 5-point stencil on the source grid.
                        out.push(TraceRecord::read(proc, self.point_addr(src, row - 1, col)));
                        out.push(TraceRecord::read(proc, self.point_addr(src, row + 1, col)));
                        out.push(TraceRecord::read(proc, self.point_addr(src, row, col - 1)));
                        out.push(TraceRecord::read(proc, self.point_addr(src, row, col + 1)));
                        out.push(TraceRecord::read(proc, self.point_addr(src, row, col)));
                        out.push(TraceRecord::write(proc, self.point_addr(dst, row, col)));
                    }
                }
            }
            pt.push(Phase::from_streams(phase));

            // Residual computation: a second, read-only pass over the source
            // band (including the remote boundary rows). This re-read after
            // a full band sweep is Ocean's main supply of reuse beyond the
            // L1 working set.
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for p in 0..self.procs {
                let proc = ProcId(p);
                let (lo, hi) = self.band(p);
                let out = &mut phase[p];
                for row in (lo - 1)..=(hi).min(self.n - 1) {
                    for col in (1..self.n - 1).step_by(stride) {
                        out.push(TraceRecord::read(proc, self.point_addr(src, row, col)));
                    }
                }
            }
            pt.push(Phase::from_streams(phase));

            // Multigrid: restriction and relaxation on two coarser levels
            // (each its own long-lived grid, band-partitioned like the fine
            // grid). Coarse data is revisited every iteration with a working
            // set that no longer fits the cache — reuse at a distance.
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for level in 1..=2usize {
                let side = self.n >> level;
                for p in 0..self.procs {
                    let proc = ProcId(p);
                    let (lo, hi) = Self::band_of(side, self.procs, p);
                    let out = &mut phase[p];
                    for row in lo..hi {
                        for col in (1..side - 1).step_by(stride) {
                            out.push(TraceRecord::read(
                                proc,
                                self.coarse_addr(level, row - 1, col),
                            ));
                            out.push(TraceRecord::read(
                                proc,
                                self.coarse_addr(level, row + 1, col),
                            ));
                            out.push(TraceRecord::read(proc, self.coarse_addr(level, row, col)));
                            let a = self.coarse_addr(level, row, col);
                            out.push(TraceRecord::write(proc, a));
                        }
                    }
                }
            }
            pt.push(Phase::from_streams(phase));

            // Reduction: every processor reads the same fixed lattice of
            // coefficient points spread over the whole (band-homed,
            // read-only) coefficient grid — remote, re-read every
            // iteration, and never invalidated.
            if self.reduction_points > 0 {
                let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
                for p in 0..self.procs {
                    let proc = ProcId(p);
                    let out = &mut phase[p];
                    for (row, col) in self.reduction_lattice() {
                        out.push(TraceRecord::read(proc, self.coeff_addr(row, col)));
                    }
                }
                pt.push(Phase::from_streams(phase));
            }
        }
        pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_touch::FirstTouchPlacement;

    fn small() -> OceanLike {
        OceanLike {
            n: 66,
            grids: 3,
            procs: 4,
            iters: 4,
            col_stride: 1,
            reduction_points: 100,
        }
    }

    #[test]
    fn bands_partition_interior_rows() {
        let w = small();
        let mut covered = Vec::new();
        for p in 0..w.procs {
            let (lo, hi) = w.band(p);
            covered.extend(lo..hi);
        }
        let expect: Vec<usize> = (1..w.n - 1).collect();
        assert_eq!(covered, expect);
    }

    #[test]
    fn remote_fraction_is_low() {
        let w = small();
        let t = w.generate(0);
        let placement = FirstTouchPlacement::from_trace(64, &t);
        let f = placement.remote_fraction(&t, ProcId(1));
        // Only boundary rows are remote: Ocean's fraction is small
        // (paper: 7.4 %).
        assert!(f < 0.20, "remote fraction {f}");
        assert!(f > 0.0, "bands must still exchange boundary rows");
    }

    #[test]
    fn footprint_counts_all_grids() {
        let w = small();
        let t = w.generate(0);
        let grid_bytes = (w.n * w.n * 8) as u64;
        let fp = t.footprint_bytes(64);
        // 3 relaxation grids + the coefficient grid, plus the two coarse
        // multigrid levels (~5/16 of a grid together).
        assert!(fp >= 4 * grid_bytes - 64 * 4, "fp = {fp}");
        assert!(fp <= 5 * grid_bytes, "fp = {fp}");
    }

    #[test]
    fn deterministic_output() {
        let w = small();
        assert_eq!(w.generate(7).len(), w.generate(9).len());
    }
}
