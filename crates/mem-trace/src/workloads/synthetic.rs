//! Generic synthetic reference generators for tests and microbenchmarks.

use super::{Splitmix, Workload};
use crate::record::{ProcId, Trace, TraceRecord};
use cache_sim::Addr;

/// Uniform random references over a fixed footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRandom {
    /// Number of references to generate.
    pub refs: usize,
    /// Footprint in 64-byte blocks.
    pub blocks: usize,
    /// Number of processors (references round-robin across them).
    pub procs: usize,
    /// Fraction of writes.
    pub write_fraction: f64,
}

impl Default for UniformRandom {
    fn default() -> Self {
        UniformRandom {
            refs: 100_000,
            blocks: 4096,
            procs: 1,
            write_fraction: 0.25,
        }
    }
}

impl Workload for UniformRandom {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn problem_size(&self) -> String {
        format!("{} blocks", self.blocks)
    }

    fn num_procs(&self) -> usize {
        self.procs
    }

    fn generate(&self, seed: u64) -> Trace {
        let mut trace = Trace::new(self.procs);
        let mut rng = Splitmix::new(seed);
        for i in 0..self.refs {
            let proc = ProcId(i % self.procs);
            let addr = Addr(rng.below(self.blocks as u64) * 64);
            if rng.chance(self.write_fraction) {
                trace.push(TraceRecord::write(proc, addr));
            } else {
                trace.push(TraceRecord::read(proc, addr));
            }
        }
        trace
    }
}

/// Zipf-distributed references (hot blocks get most accesses), a common
/// stand-in for skewed reuse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfRandom {
    /// Number of references to generate.
    pub refs: usize,
    /// Footprint in 64-byte blocks.
    pub blocks: usize,
    /// Zipf exponent (1.0 = classic).
    pub exponent: f64,
    /// Fraction of writes.
    pub write_fraction: f64,
}

impl Default for ZipfRandom {
    fn default() -> Self {
        ZipfRandom {
            refs: 100_000,
            blocks: 4096,
            exponent: 1.0,
            write_fraction: 0.1,
        }
    }
}

impl Workload for ZipfRandom {
    fn name(&self) -> &'static str {
        "zipf"
    }

    fn problem_size(&self) -> String {
        format!("{} blocks, a={}", self.blocks, self.exponent)
    }

    fn num_procs(&self) -> usize {
        1
    }

    fn generate(&self, seed: u64) -> Trace {
        // Precompute the CDF once.
        let mut weights: Vec<f64> = (1..=self.blocks)
            .map(|r| 1.0 / (r as f64).powf(self.exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        let mut trace = Trace::new(1);
        let mut rng = Splitmix::new(seed);
        for _ in 0..self.refs {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let idx = weights.partition_point(|&c| c < u).min(self.blocks - 1);
            // Scatter ranks over the address space so hot blocks spread
            // across cache sets.
            let block = (idx as u64).wrapping_mul(0x9E37_79B9) % self.blocks as u64;
            let addr = Addr(block * 64);
            if rng.chance(self.write_fraction) {
                trace.push(TraceRecord::write(ProcId(0), addr));
            } else {
                trace.push(TraceRecord::read(ProcId(0), addr));
            }
        }
        trace
    }
}

/// A repeating sequential scan over a footprint (the LRU-adversarial
/// pattern: with footprint > capacity, LRU misses every reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialScan {
    /// Number of full passes over the footprint.
    pub passes: usize,
    /// Footprint in 64-byte blocks.
    pub blocks: usize,
}

impl Default for SequentialScan {
    fn default() -> Self {
        SequentialScan {
            passes: 10,
            blocks: 1024,
        }
    }
}

impl Workload for SequentialScan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn problem_size(&self) -> String {
        format!("{} blocks x {} passes", self.blocks, self.passes)
    }

    fn num_procs(&self) -> usize {
        1
    }

    fn generate(&self, _seed: u64) -> Trace {
        let mut trace = Trace::new(1);
        for _ in 0..self.passes {
            for b in 0..self.blocks {
                trace.push(TraceRecord::read(ProcId(0), Addr((b * 64) as u64)));
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_footprint() {
        let w = UniformRandom {
            refs: 50_000,
            blocks: 256,
            procs: 2,
            write_fraction: 0.5,
        };
        let t = w.generate(1);
        assert_eq!(t.len(), 50_000);
        assert_eq!(t.footprint_bytes(64), 256 * 64);
        assert!(t.refs_by(ProcId(0)) == 25_000);
    }

    #[test]
    fn zipf_is_skewed() {
        let w = ZipfRandom {
            refs: 50_000,
            blocks: 1024,
            exponent: 1.0,
            write_fraction: 0.0,
        };
        let t = w.generate(3);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            *counts.entry(r.block(64).0).or_insert(0u64) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top16: u64 = freq.iter().take(16).sum();
        assert!(
            top16 as f64 > 0.3 * 50_000.0,
            "top-16 blocks should dominate, got {top16}"
        );
    }

    #[test]
    fn scan_is_exact() {
        let w = SequentialScan {
            passes: 3,
            blocks: 16,
        };
        let t = w.generate(0);
        assert_eq!(t.len(), 48);
        assert_eq!(t.records()[0].addr, Addr(0));
        assert_eq!(t.records()[16].addr, Addr(0));
    }
}
