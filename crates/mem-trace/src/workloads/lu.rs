//! A blocked dense LU factorization kernel (SPLASH-2 LU analog).
//!
//! The matrix is divided into B×B blocks scattered over a 2-D processor
//! grid, exactly like SPLASH-2 LU. Each outer step `k` factorizes the
//! diagonal block, has owners update the perimeter blocks against it, and
//! then has owners update interior blocks against the perimeter. Accesses
//! to a processor's own blocks dominate (high locality), while pivot/
//! perimeter reads go to other owners' blocks — the moderate remote
//! fraction and the strong per-set imbalance the paper reports for LU.

use super::{Workload, INTERLEAVE_CHUNK};
use crate::phased::{Phase, PhasedTrace};
use crate::record::{ProcId, Trace, TraceRecord};
use cache_sim::Addr;

/// Configuration of [`LuLike`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuLike {
    /// Matrix dimension (elements per side).
    pub n: usize,
    /// Block dimension.
    pub block: usize,
    /// Number of processors.
    pub procs: usize,
    /// Sampling stride over element accesses: 1 traces every access, `s`
    /// traces one in `s` (keeps default traces tractable while preserving
    /// the block-level structure).
    pub element_stride: usize,
}

impl Default for LuLike {
    /// Trace-study scale: 256×256 with 16×16 blocks on 8 processors.
    fn default() -> Self {
        LuLike {
            n: 256,
            block: 16,
            procs: 8,
            element_stride: 1,
        }
    }
}

impl LuLike {
    /// The paper's Table-1 configuration: 512×512 on 8 processors.
    #[must_use]
    pub fn paper_scale() -> Self {
        LuLike {
            n: 512,
            block: 16,
            procs: 8,
            element_stride: 1,
        }
    }

    /// The reduced RSIM configuration of Section 4.2: 256×256.
    #[must_use]
    pub fn rsim_scale() -> Self {
        LuLike {
            n: 256,
            block: 16,
            procs: 16,
            element_stride: 2,
        }
    }

    fn blocks_per_side(&self) -> usize {
        self.n / self.block
    }

    /// 2-D scatter assignment of blocks to processors.
    fn owner(&self, bi: usize, bj: usize) -> ProcId {
        // Processor grid as square as possible.
        let pr = (self.procs as f64).sqrt() as usize;
        let pr = pr.max(1);
        let pc = self.procs / pr;
        ProcId((bi % pr) * pc + (bj % pc))
    }

    /// Byte address of element (i, j); the matrix is stored block-major so
    /// a block is contiguous (as SPLASH-2 LU does).
    fn elem_addr(&self, i: usize, j: usize) -> Addr {
        let (bi, bj) = (i / self.block, j / self.block);
        let (oi, oj) = (i % self.block, j % self.block);
        let block_idx = bi * self.blocks_per_side() + bj;
        let elem_idx = oi * self.block + oj;
        Addr(((block_idx * self.block * self.block + elem_idx) * 8) as u64)
    }

    /// Emits the accesses of one block-level task into `out`.
    /// `reads` lists source blocks, `target` is read-modified-written.
    fn block_task(
        &self,
        out: &mut Vec<TraceRecord>,
        proc: ProcId,
        reads: &[(usize, usize)],
        target: (usize, usize),
    ) {
        let b = self.block;
        let stride = self.element_stride.max(1);
        let (ti, tj) = (target.0 * b, target.1 * b);
        let mut step = 0usize;
        for i in 0..b {
            for j in 0..b {
                step += 1;
                if !step.is_multiple_of(stride) {
                    continue;
                }
                // Source elements are register-reused across the inner
                // daxpy, so they are read at half the rate of the target
                // element's load/store pair (this keeps the remote access
                // fraction near the paper's moderate LU value).
                if step.is_multiple_of(2) {
                    for &(ri, rj) in reads {
                        out.push(TraceRecord::read(
                            proc,
                            self.elem_addr(ri * b + i, rj * b + j % b),
                        ));
                    }
                }
                let a = self.elem_addr(ti + i, tj + j);
                out.push(TraceRecord::read(proc, a));
                out.push(TraceRecord::write(proc, a));
            }
        }
    }
}

impl Workload for LuLike {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn problem_size(&self) -> String {
        format!("{0} x {0}", self.n)
    }

    fn num_procs(&self) -> usize {
        self.procs
    }

    fn generate(&self, seed: u64) -> Trace {
        self.generate_phases(seed).interleave(INTERLEAVE_CHUNK)
    }

    fn generate_phases(&self, _seed: u64) -> PhasedTrace {
        assert!(self.n.is_multiple_of(self.block), "matrix must divide into blocks");
        let nb = self.blocks_per_side();
        let mut pt = PhasedTrace::new(self.procs);

        // Initialization: every owner writes its blocks (first touch).
        let mut init: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
        for bi in 0..nb {
            for bj in 0..nb {
                let p = self.owner(bi, bj);
                let b = self.block;
                for i in (0..b * b).step_by(self.element_stride.max(1) * 4) {
                    let addr = self.elem_addr(bi * b + i / b, bj * b + i % b);
                    init[p.0].push(TraceRecord::write(p, addr));
                }
            }
        }
        pt.push(Phase::from_streams(init));

        // Outer factorization steps with barrier-separated phases.
        for k in 0..nb {
            // Phase 1: factor the diagonal block (its owner only).
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            let p = self.owner(k, k);
            self.block_task(&mut phase[p.0], p, &[], (k, k));
            pt.push(Phase::from_streams(phase));

            // Phase 2: perimeter updates read the diagonal block.
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for x in (k + 1)..nb {
                let p = self.owner(k, x);
                self.block_task(&mut phase[p.0], p, &[(k, k)], (k, x));
                let p = self.owner(x, k);
                self.block_task(&mut phase[p.0], p, &[(k, k)], (x, k));
            }
            pt.push(Phase::from_streams(phase));

            // Phase 3: interior updates read their perimeter blocks.
            // Column-major task order: the row-perimeter block (k, j) is
            // reused by consecutive tasks, while the column-panel block
            // (i, k) is re-read once per column of tasks — a medium reuse
            // distance just beyond the cache, which is what makes LU's
            // locality profile interesting for reservations.
            let mut phase: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.procs];
            for j in (k + 1)..nb {
                for i in (k + 1)..nb {
                    let p = self.owner(i, j);
                    self.block_task(&mut phase[p.0], p, &[(i, k), (k, j)], (i, j));
                }
            }
            pt.push(Phase::from_streams(phase));
        }
        pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_touch::FirstTouchPlacement;

    #[test]
    fn trace_is_deterministic() {
        let w = LuLike {
            n: 64,
            block: 16,
            procs: 4,
            element_stride: 2,
        };
        let a = w.generate(1);
        let b = w.generate(2); // seed is unused: structurally deterministic
        assert_eq!(a.len(), b.len());
        assert!(a.len() > 10_000, "len = {}", a.len());
    }

    #[test]
    fn footprint_matches_matrix_size() {
        let w = LuLike {
            n: 64,
            block: 16,
            procs: 4,
            element_stride: 1,
        };
        let t = w.generate(0);
        // 64*64*8 = 32 KB of matrix data.
        assert_eq!(t.footprint_bytes(64), 64 * 64 * 8);
    }

    #[test]
    fn all_procs_participate() {
        let w = LuLike {
            n: 64,
            block: 16,
            procs: 4,
            element_stride: 2,
        };
        let t = w.generate(0);
        for p in 0..4 {
            assert!(t.refs_by(ProcId(p)) > 0, "P{p} idle");
        }
    }

    #[test]
    fn remote_fraction_is_moderate() {
        let w = LuLike::default();
        let t = w.generate(0);
        let placement = FirstTouchPlacement::from_trace(64, &t);
        let f = placement.remote_fraction(&t, ProcId(1));
        // Paper (Table 1): 19.1 % for LU. The synthetic kernel should land
        // in the same moderate band.
        assert!(f > 0.05 && f < 0.45, "remote fraction {f}");
    }

    #[test]
    fn owner_scatter_covers_all_procs() {
        let w = LuLike {
            n: 256,
            block: 16,
            procs: 8,
            element_stride: 1,
        };
        let mut seen = std::collections::HashSet::new();
        for bi in 0..16 {
            for bj in 0..16 {
                seen.insert(w.owner(bi, bj).0);
            }
        }
        assert_eq!(seen.len(), 8);
    }
}
