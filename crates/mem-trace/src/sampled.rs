//! The sample-processor trace view of Section 3.1.
//!
//! The paper's trace-driven experiments simulate the cache of **one**
//! processor: its trace contains *all* shared-data references of the sample
//! processor, plus the shared **writes of every other processor**, which
//! arrive at the simulated cache as coherence invalidations.

use crate::record::{ProcId, Trace};
use cache_sim::{AccessType, Addr};

/// One event as seen by the sample processor's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampledEvent {
    /// A reference issued by the sample processor itself.
    Own {
        /// Referenced byte address.
        addr: Addr,
        /// Read or write.
        op: AccessType,
    },
    /// A write by another processor: invalidates the block if cached.
    ForeignWrite {
        /// Written byte address.
        addr: Addr,
    },
}

/// The trace-driven input for one sample processor.
#[derive(Debug, Clone)]
pub struct SampledTrace {
    proc: ProcId,
    events: Vec<SampledEvent>,
    own_refs: u64,
    foreign_writes: u64,
}

impl SampledTrace {
    /// Extracts the sample view of `proc` from a full multiprocessor trace.
    #[must_use]
    pub fn from_trace(trace: &Trace, proc: ProcId) -> Self {
        let mut events = Vec::new();
        let mut own_refs = 0;
        let mut foreign_writes = 0;
        for rec in trace {
            if rec.proc == proc {
                events.push(SampledEvent::Own {
                    addr: rec.addr,
                    op: rec.op,
                });
                own_refs += 1;
            } else if rec.op == AccessType::Write {
                events.push(SampledEvent::ForeignWrite { addr: rec.addr });
                foreign_writes += 1;
            }
        }
        SampledTrace {
            proc,
            events,
            own_refs,
            foreign_writes,
        }
    }

    /// The sample processor.
    #[must_use]
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// All events in order.
    #[must_use]
    pub fn events(&self) -> &[SampledEvent] {
        &self.events
    }

    /// References issued by the sample processor.
    #[must_use]
    pub fn own_refs(&self) -> u64 {
        self.own_refs
    }

    /// Foreign writes (potential invalidations).
    #[must_use]
    pub fn foreign_writes(&self) -> u64 {
        self.foreign_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    #[test]
    fn keeps_own_refs_and_foreign_writes_only() {
        let mut t = Trace::new(3);
        t.push(TraceRecord::read(ProcId(0), Addr(0)));
        t.push(TraceRecord::read(ProcId(1), Addr(64))); // foreign read: dropped
        t.push(TraceRecord::write(ProcId(1), Addr(128))); // foreign write: kept
        t.push(TraceRecord::write(ProcId(0), Addr(192)));
        t.push(TraceRecord::write(ProcId(2), Addr(0))); // foreign write: kept
        let s = SampledTrace::from_trace(&t, ProcId(0));
        assert_eq!(s.own_refs(), 2);
        assert_eq!(s.foreign_writes(), 2);
        assert_eq!(s.events().len(), 4);
        assert_eq!(
            s.events()[0],
            SampledEvent::Own {
                addr: Addr(0),
                op: AccessType::Read
            }
        );
        assert_eq!(
            s.events()[1],
            SampledEvent::ForeignWrite { addr: Addr(128) }
        );
    }

    #[test]
    fn order_is_preserved() {
        let mut t = Trace::new(2);
        for i in 0..10u64 {
            let p = ProcId((i % 2) as usize);
            t.push(TraceRecord::write(p, Addr(i * 64)));
        }
        let s = SampledTrace::from_trace(&t, ProcId(1));
        // Alternating Own/ForeignWrite, starting with a foreign write by P0.
        assert!(matches!(s.events()[0], SampledEvent::ForeignWrite { .. }));
        assert!(matches!(s.events()[1], SampledEvent::Own { .. }));
        assert_eq!(s.events().len(), 10);
    }
}
