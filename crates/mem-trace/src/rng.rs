//! Small deterministic pseudo-random number generators.
//!
//! The workspace deliberately avoids the `rand` crate: trace generation,
//! cost mappings and the concurrent-cache stress tests all need streams
//! that are reproducible byte-for-byte across toolchains and offline
//! builds, independent of any external crate's version-dependent stream
//! definitions. Two tiny, well-known generators cover every need:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit finalizer-based
//!   generator. Equidistributed enough for workload synthesis, and its
//!   single-`u64` state makes seeding derived streams trivial.
//! * [`XorShift64Star`] — Marsaglia's xorshift with a multiplicative
//!   output scramble; used where a non-additive state walk is preferred
//!   (e.g. per-thread streams split from one seed).
//!
//! Neither generator is cryptographic; they are simulation tools.

/// SplitMix64: `state += GOLDEN; output = mix(state)`.
///
/// # Examples
///
/// ```
/// use mem_trace::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed` (any value, including 0).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A new generator whose stream is decorrelated from this one —
    /// the standard way to hand independent streams to worker threads.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// xorshift64*: 64-bit xorshift state walk with a multiplicative output
/// scramble. The all-zero state is unreachable, so zero seeds are remapped.
///
/// # Examples
///
/// ```
/// use mem_trace::rng::XorShift64Star;
/// let mut r = XorShift64Star::new(42);
/// let x = r.next_u64();
/// assert_ne!(x, r.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator seeded with `seed`; a zero seed is remapped to a
    /// fixed nonzero constant (xorshift cannot leave state zero).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 scrambled bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_streams_are_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_split_decorrelates() {
        let mut root = SplitMix64::new(9);
        let mut c1 = root.split();
        let mut c2 = root.split();
        let overlap = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn xorshift_zero_seed_is_remapped() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut s = SplitMix64::new(5);
        let mut x = XorShift64Star::new(5);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let a = s.below(8);
            let b = x.below(8);
            assert!(a < 8 && b < 8);
            seen[a as usize] = true;
            seen[b as usize] = true;
        }
        assert!(
            seen.iter().all(|&v| v),
            "8 buckets must all be hit in 512 draws"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift64Star::new(77);
        for _ in 0..100 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
