//! Compact binary (de)serialization of traces, so generated workloads can
//! be saved and replayed without regeneration (the paper's methodology
//! gathers traces once and reuses them across every cache configuration).
//!
//! Format (`CSRT`, version 1, little-endian):
//!
//! ```text
//! magic  b"CSRT"      4 bytes
//! ver    u8           = 1
//! procs  u32
//! count  u64
//! count x { proc u16, op u8 (0 read / 1 write), addr u64 }
//! ```

use crate::record::{ProcId, Trace, TraceRecord};
use cache_sim::{AccessType, Addr};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CSRT";
const VERSION: u8 = 1;

/// Errors produced when decoding a trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a CSRT trace or has an unsupported version.
    Format(String),
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::Format(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Format(_) => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Writes `trace` to `w` in CSRT format. A `&mut` reference may be passed
/// as the writer.
///
/// # Errors
///
/// Propagates any underlying I/O error.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(trace.num_procs() as u32).to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(trace.len().min(1 << 16) * 11);
    for rec in trace {
        buf.extend_from_slice(&(rec.proc.0 as u16).to_le_bytes());
        buf.push(match rec.op {
            AccessType::Read => 0,
            AccessType::Write => 1,
        });
        buf.extend_from_slice(&rec.addr.0.to_le_bytes());
        if buf.len() >= 1 << 20 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Reads a CSRT trace from `r`. A `&mut` reference may be passed as the
/// reader.
///
/// # Errors
///
/// Returns [`ReadTraceError::Format`] for a bad magic, version, or
/// truncated/invalid payload, and [`ReadTraceError::Io`] for I/O failures.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, ReadTraceError> {
    let mut head = [0u8; 4 + 1 + 4 + 8];
    r.read_exact(&mut head)?;
    if &head[0..4] != MAGIC {
        return Err(ReadTraceError::Format("bad magic".into()));
    }
    if head[4] != VERSION {
        return Err(ReadTraceError::Format(format!(
            "unsupported version {}",
            head[4]
        )));
    }
    let procs = u32::from_le_bytes(head[5..9].try_into().expect("fixed slice")) as usize;
    let count = u64::from_le_bytes(head[9..17].try_into().expect("fixed slice"));
    if procs == 0 {
        return Err(ReadTraceError::Format("zero processors".into()));
    }
    let mut trace = Trace::new(procs);
    let mut rec = [0u8; 11];
    for i in 0..count {
        r.read_exact(&mut rec)
            .map_err(|e| ReadTraceError::Format(format!("truncated at record {i}: {e}")))?;
        let proc = u16::from_le_bytes(rec[0..2].try_into().expect("fixed slice")) as usize;
        if proc >= procs {
            return Err(ReadTraceError::Format(format!(
                "record {i}: processor {proc} out of range"
            )));
        }
        let op = match rec[2] {
            0 => AccessType::Read,
            1 => AccessType::Write,
            other => {
                return Err(ReadTraceError::Format(format!(
                    "record {i}: bad op byte {other}"
                )))
            }
        };
        let addr = Addr(u64::from_le_bytes(
            rec[3..11].try_into().expect("fixed slice"),
        ));
        trace.push(TraceRecord {
            proc: ProcId(proc),
            addr,
            op,
        });
    }
    Ok(trace)
}

/// Writes `trace` to the file at `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_trace<P: AsRef<std::path::Path>>(trace: &Trace, path: P) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_trace(trace, io::BufWriter::new(f))
}

/// Reads a trace from the file at `path`.
///
/// # Errors
///
/// See [`read_trace`].
pub fn load_trace<P: AsRef<std::path::Path>>(path: P) -> Result<Trace, ReadTraceError> {
    let f = std::fs::File::open(path).map_err(ReadTraceError::Io)?;
    read_trace(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::synthetic::UniformRandom;
    use crate::Workload;

    #[test]
    fn roundtrip_preserves_every_record() {
        let w = UniformRandom {
            refs: 5000,
            blocks: 512,
            procs: 3,
            write_fraction: 0.4,
        };
        let t = w.generate(9);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write to Vec");
        let back = read_trace(buf.as_slice()).expect("read back");
        assert_eq!(back.num_procs(), t.num_procs());
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"[..]);
        assert!(matches!(err, Err(ReadTraceError::Format(_))));
    }

    #[test]
    fn rejects_truncated_payload() {
        let w = UniformRandom {
            refs: 10,
            blocks: 8,
            procs: 1,
            write_fraction: 0.0,
        };
        let t = w.generate(1);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(ReadTraceError::Format(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_processor() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CSRT");
        buf.push(1);
        buf.extend_from_slice(&1u32.to_le_bytes()); // 1 processor
        buf.extend_from_slice(&1u64.to_le_bytes()); // 1 record
        buf.extend_from_slice(&5u16.to_le_bytes()); // proc 5: out of range
        buf.push(0);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(ReadTraceError::Format(_))
        ));
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("csrt_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("t.csrt");
        let w = UniformRandom {
            refs: 100,
            blocks: 16,
            procs: 2,
            write_fraction: 0.5,
        };
        let t = w.generate(4);
        save_trace(&t, &path).expect("save");
        let back = load_trace(&path).expect("load");
        assert_eq!(back.records(), t.records());
        std::fs::remove_file(&path).ok();
    }
}
