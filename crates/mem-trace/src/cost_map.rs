//! Static cost mappings for the two-cost experiments (Section 3).
//!
//! A [`CostMap`] assigns each memory block the cost its misses will incur.
//! Two mappings from the paper:
//!
//! * [`RandomCostMap`] — every block is independently high-cost with
//!   probability `haf` (the *high-cost access fraction* knob of Section
//!   3.2), decided by a seeded hash of the block address so the mapping is
//!   deterministic and storage-free;
//! * [`FirstTouchCostMap`] — blocks homed remotely (under first-touch
//!   placement) are high-cost, locally-homed blocks low-cost (Section 3.3).

use crate::first_touch::FirstTouchPlacement;
use crate::record::ProcId;
use cache_sim::{BlockAddr, Cost, CostPair};

/// Assigns a static miss cost to every block, from the perspective of one
/// observing processor.
pub trait CostMap {
    /// The miss cost of `block`.
    fn cost_of(&self, block: BlockAddr) -> Cost;

    /// Whether `block` is a high-cost block.
    fn is_high_cost(&self, block: BlockAddr) -> bool;
}

/// Uniform pseudo-random assignment of high costs to blocks.
#[derive(Debug, Clone)]
pub struct RandomCostMap {
    pair: CostPair,
    /// High-cost probability threshold scaled to u64 range.
    threshold: u64,
    seed: u64,
}

impl RandomCostMap {
    /// Creates a map in which each block is high-cost with probability
    /// `haf`, with costs from `pair`.
    ///
    /// # Panics
    ///
    /// Panics if `haf` is not within `[0, 1]`.
    #[must_use]
    pub fn new(haf: f64, pair: CostPair, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&haf),
            "HAF must be in [0, 1], got {haf}"
        );
        let threshold = if haf >= 1.0 {
            u64::MAX
        } else {
            (haf * u64::MAX as f64) as u64
        };
        RandomCostMap {
            pair,
            threshold,
            seed,
        }
    }

    /// The configured cost pair.
    #[must_use]
    pub fn pair(&self) -> CostPair {
        self.pair
    }

    fn hash(&self, block: BlockAddr) -> u64 {
        // One SplitMix64 step keyed by (block ^ seed): uniform,
        // deterministic and stateless (shared with the workload kernels).
        crate::workloads::Splitmix::new(block.0 ^ self.seed.rotate_left(17)).next_u64()
    }
}

impl CostMap for RandomCostMap {
    fn cost_of(&self, block: BlockAddr) -> Cost {
        self.pair.pick(self.is_high_cost(block))
    }

    fn is_high_cost(&self, block: BlockAddr) -> bool {
        if self.threshold == u64::MAX {
            return true;
        }
        self.hash(block) < self.threshold
    }
}

/// High cost for remotely-homed blocks, low cost for local ones.
#[derive(Debug, Clone)]
pub struct FirstTouchCostMap {
    placement: FirstTouchPlacement,
    me: ProcId,
    pair: CostPair,
    block_bytes: u64,
}

impl FirstTouchCostMap {
    /// Creates a map for references by processor `me` under `placement`.
    #[must_use]
    pub fn new(
        placement: FirstTouchPlacement,
        me: ProcId,
        pair: CostPair,
        block_bytes: u64,
    ) -> Self {
        FirstTouchCostMap {
            placement,
            me,
            pair,
            block_bytes,
        }
    }

    /// The underlying placement.
    #[must_use]
    pub fn placement(&self) -> &FirstTouchPlacement {
        &self.placement
    }
}

impl CostMap for FirstTouchCostMap {
    fn cost_of(&self, block: BlockAddr) -> Cost {
        self.pair.pick(self.is_high_cost(block))
    }

    fn is_high_cost(&self, block: BlockAddr) -> bool {
        self.placement
            .is_remote(self.me, block.base_addr(self.block_bytes))
    }
}

/// A fixed uniform cost for every block (useful to verify that the
/// cost-sensitive policies degenerate to LRU when costs are equal).
#[derive(Debug, Clone, Copy)]
pub struct UniformCostMap(pub Cost);

impl CostMap for UniformCostMap {
    fn cost_of(&self, _block: BlockAddr) -> Cost {
        self.0
    }

    fn is_high_cost(&self, _block: BlockAddr) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Trace, TraceRecord};
    use cache_sim::Addr;

    #[test]
    fn random_map_fraction_tracks_haf() {
        for &haf in &[0.0, 0.1, 0.3, 0.5, 0.9, 1.0] {
            let m = RandomCostMap::new(haf, CostPair::ratio(4), 42);
            let high = (0..20_000u64)
                .filter(|&b| m.is_high_cost(BlockAddr(b)))
                .count();
            let measured = high as f64 / 20_000.0;
            assert!(
                (measured - haf).abs() < 0.02,
                "haf {haf}: measured {measured}"
            );
        }
    }

    #[test]
    fn random_map_is_deterministic_per_seed() {
        let a = RandomCostMap::new(0.5, CostPair::ratio(2), 7);
        let b = RandomCostMap::new(0.5, CostPair::ratio(2), 7);
        let c = RandomCostMap::new(0.5, CostPair::ratio(2), 8);
        let same =
            (0..1000u64).all(|x| a.is_high_cost(BlockAddr(x)) == b.is_high_cost(BlockAddr(x)));
        let differ =
            (0..1000u64).any(|x| a.is_high_cost(BlockAddr(x)) != c.is_high_cost(BlockAddr(x)));
        assert!(same);
        assert!(differ);
    }

    #[test]
    fn random_map_costs_match_pair() {
        let m = RandomCostMap::new(0.5, CostPair::ratio(8), 1);
        for b in 0..100u64 {
            let c = m.cost_of(BlockAddr(b));
            assert!(c == Cost(1) || c == Cost(8));
            assert_eq!(c == Cost(8), m.is_high_cost(BlockAddr(b)));
        }
    }

    #[test]
    #[should_panic(expected = "HAF must be in")]
    fn rejects_bad_haf() {
        let _ = RandomCostMap::new(1.5, CostPair::ratio(2), 0);
    }

    #[test]
    fn first_touch_map_marks_remote_blocks() {
        let mut t = Trace::new(2);
        t.push(TraceRecord::write(ProcId(1), Addr(0))); // block 0 homed at P1
        t.push(TraceRecord::write(ProcId(0), Addr(64))); // block 1 homed at P0
        let placement = FirstTouchPlacement::from_trace(64, &t);
        let m = FirstTouchCostMap::new(placement, ProcId(0), CostPair::ratio(16), 64);
        assert!(m.is_high_cost(BlockAddr(0)));
        assert_eq!(m.cost_of(BlockAddr(0)), Cost(16));
        assert!(!m.is_high_cost(BlockAddr(1)));
        assert_eq!(m.cost_of(BlockAddr(1)), Cost(1));
    }

    #[test]
    fn uniform_map_is_flat() {
        let m = UniformCostMap(Cost(3));
        assert_eq!(m.cost_of(BlockAddr(1)), Cost(3));
        assert!(!m.is_high_cost(BlockAddr(1)));
    }
}
