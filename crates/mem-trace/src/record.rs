//! Trace records and containers.
//!
//! A [`Trace`] is a time-ordered sequence of shared-data references from all
//! processors of a simulated multiprocessor execution, following the
//! methodology of Section 3.1 of the paper: private data and instruction
//! references are excluded, writes from every processor are retained (they
//! drive invalidations), and one processor is later *sampled* for the
//! trace-driven cache study (see [`crate::sampled`]).

use cache_sim::{AccessType, Addr, BlockAddr};
use std::fmt;

/// Identifier of a processor in the traced machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// One shared-data reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The processor issuing the reference.
    pub proc: ProcId,
    /// The referenced byte address.
    pub addr: Addr,
    /// Read or write.
    pub op: AccessType,
}

impl TraceRecord {
    /// Convenience constructor for a read.
    #[must_use]
    pub fn read(proc: ProcId, addr: Addr) -> Self {
        TraceRecord {
            proc,
            addr,
            op: AccessType::Read,
        }
    }

    /// Convenience constructor for a write.
    #[must_use]
    pub fn write(proc: ProcId, addr: Addr) -> Self {
        TraceRecord {
            proc,
            addr,
            op: AccessType::Write,
        }
    }

    /// The block containing this reference for `block_bytes`-byte blocks.
    #[must_use]
    pub fn block(&self, block_bytes: u64) -> BlockAddr {
        self.addr.block(block_bytes)
    }
}

/// A time-ordered multiprocessor reference trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    num_procs: usize,
}

impl Trace {
    /// Creates an empty trace for `num_procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `num_procs` is zero.
    #[must_use]
    pub fn new(num_procs: usize) -> Self {
        assert!(num_procs > 0, "a trace needs at least one processor");
        Trace {
            records: Vec::new(),
            num_procs,
        }
    }

    /// Number of processors that contributed to this trace.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if the record's processor id is out of range.
    pub fn push(&mut self, rec: TraceRecord) {
        assert!(
            rec.proc.0 < self.num_procs,
            "processor id {} out of range",
            rec.proc
        );
        self.records.push(rec);
    }

    /// The records in order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Number of references issued by `proc`.
    #[must_use]
    pub fn refs_by(&self, proc: ProcId) -> u64 {
        self.records.iter().filter(|r| r.proc == proc).count() as u64
    }

    /// Total bytes touched, rounded to `block_bytes` blocks (the footprint).
    #[must_use]
    pub fn footprint_bytes(&self, block_bytes: u64) -> u64 {
        let mut blocks: Vec<u64> = self
            .records
            .iter()
            .map(|r| r.block(block_bytes).0)
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks.len() as u64 * block_bytes
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        for rec in iter {
            self.push(rec);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut t = Trace::new(2);
        t.push(TraceRecord::read(ProcId(0), Addr(0x100)));
        t.push(TraceRecord::write(ProcId(1), Addr(0x140)));
        t.push(TraceRecord::read(ProcId(0), Addr(0x104)));
        assert_eq!(t.len(), 3);
        assert_eq!(t.refs_by(ProcId(0)), 2);
        assert_eq!(t.refs_by(ProcId(1)), 1);
        // 0x100 and 0x104 share a 64-byte block; 0x140 is another.
        assert_eq!(t.footprint_bytes(64), 128);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_proc() {
        let mut t = Trace::new(2);
        t.push(TraceRecord::read(ProcId(2), Addr(0)));
    }

    #[test]
    fn extend_and_iterate() {
        let mut t = Trace::new(1);
        t.extend((0..5).map(|i| TraceRecord::read(ProcId(0), Addr(i * 64))));
        assert_eq!(t.iter().count(), 5);
        let blocks: Vec<u64> = (&t).into_iter().map(|r| r.block(64).0).collect();
        assert_eq!(blocks, vec![0, 1, 2, 3, 4]);
    }
}
