//! # mem-trace
//!
//! Memory reference traces and synthetic workloads for the HPCA 2003
//! cost-sensitive-replacement reproduction:
//!
//! * [`record`] — multiprocessor [`Trace`]s of shared-data references;
//! * [`workloads`] — synthetic SPLASH-2-like kernels ([`BarnesLike`],
//!   [`LuLike`], [`OceanLike`], [`RaytraceLike`]) plus generic generators;
//! * [`first_touch`] — first-touch NUMA placement and remote fractions;
//! * [`cost_map`] — the random and first-touch two-cost mappings of
//!   Section 3;
//! * [`sampled`] — the Section 3.1 sample-processor trace view (own
//!   references + foreign writes);
//! * [`rng`] — the internal SplitMix64/xorshift generators every stream
//!   in the workspace is derived from (no `rand` dependency);
//! * [`stats`] — Table-1-style trace characteristics.
//!
//! # Examples
//!
//! ```
//! use mem_trace::{Workload, workloads::OceanLike, ProcId};
//! use mem_trace::first_touch::FirstTouchPlacement;
//!
//! let w = OceanLike { n: 66, grids: 2, procs: 4, iters: 2, col_stride: 2, reduction_points: 50 };
//! let trace = w.generate(42);
//! let placement = FirstTouchPlacement::from_trace(64, &trace);
//! let remote = placement.remote_fraction(&trace, ProcId(1));
//! assert!(remote < 0.25); // Ocean-like kernels are mostly local
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost_map;
pub mod criticality;
pub mod first_touch;
pub mod io;
pub mod phased;
pub mod record;
pub mod rng;
pub mod sampled;
pub mod stats;
pub mod workloads;

pub use cost_map::{CostMap, FirstTouchCostMap, RandomCostMap, UniformCostMap};
pub use first_touch::FirstTouchPlacement;
pub use phased::{Phase, PhasedTrace};
pub use record::{ProcId, Trace, TraceRecord};
pub use sampled::{SampledEvent, SampledTrace};
pub use stats::{characterize, representative_processor, TraceCharacteristics};
pub use workloads::{BarnesLike, LuLike, OceanLike, RaytraceLike, Workload};
