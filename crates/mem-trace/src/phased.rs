//! Phased traces: per-processor reference streams separated by barriers.
//!
//! The trace-driven study (Section 3) consumes a single interleaved
//! [`Trace`]; the execution-driven study (Section 4) instead
//! replays each processor's stream on its own simulated CPU, with barrier
//! synchronization between program phases — the interleaving *within* a
//! phase then emerges from the simulated timing.

use crate::record::{ProcId, Trace, TraceRecord};

/// One barrier-delimited phase: a reference stream per processor.
#[derive(Debug, Clone, Default)]
pub struct Phase {
    pub(crate) streams: Vec<Vec<TraceRecord>>,
}

impl Phase {
    /// Creates an empty phase for `num_procs` processors.
    #[must_use]
    pub fn new(num_procs: usize) -> Self {
        Phase {
            streams: vec![Vec::new(); num_procs],
        }
    }

    /// Wraps existing per-processor streams.
    #[must_use]
    pub fn from_streams(streams: Vec<Vec<TraceRecord>>) -> Self {
        Phase { streams }
    }

    /// The stream of processor `p`.
    #[must_use]
    pub fn stream(&self, p: ProcId) -> &[TraceRecord] {
        &self.streams[p.0]
    }

    /// All streams.
    #[must_use]
    pub fn streams(&self) -> &[Vec<TraceRecord>] {
        &self.streams
    }

    /// Total references across all processors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Whether no processor has any reference in this phase.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.streams.iter().all(Vec::is_empty)
    }
}

/// A whole execution: phases separated by global barriers.
#[derive(Debug, Clone)]
pub struct PhasedTrace {
    num_procs: usize,
    phases: Vec<Phase>,
}

impl PhasedTrace {
    /// Creates an empty phased trace.
    ///
    /// # Panics
    ///
    /// Panics if `num_procs` is zero.
    #[must_use]
    pub fn new(num_procs: usize) -> Self {
        assert!(num_procs > 0, "need at least one processor");
        PhasedTrace {
            num_procs,
            phases: Vec::new(),
        }
    }

    /// Appends a phase.
    ///
    /// # Panics
    ///
    /// Panics if the phase's processor count differs.
    pub fn push(&mut self, phase: Phase) {
        assert_eq!(
            phase.streams.len(),
            self.num_procs,
            "phase has wrong processor count"
        );
        self.phases.push(phase);
    }

    /// Number of processors.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// The phases in program order.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total references across all phases and processors.
    #[must_use]
    pub fn total_refs(&self) -> usize {
        self.phases.iter().map(Phase::len).sum()
    }

    /// Flattens into a single [`Trace`] by round-robin interleaving chunks
    /// of `chunk` records within each phase (the Section 3 methodology).
    #[must_use]
    pub fn interleave(&self, chunk: usize) -> Trace {
        let mut trace = Trace::new(self.num_procs);
        let il = crate::workloads::interleaver(chunk);
        for phase in &self.phases {
            il.merge_into(&mut trace, &phase.streams);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::Addr;

    #[test]
    fn phase_accounting() {
        let mut ph = Phase::new(2);
        ph.streams[0].push(TraceRecord::read(ProcId(0), Addr(0)));
        assert_eq!(ph.len(), 1);
        assert!(!ph.is_empty());
        assert_eq!(ph.stream(ProcId(1)).len(), 0);
    }

    #[test]
    fn interleave_respects_phase_barriers() {
        let mut pt = PhasedTrace::new(2);
        let mut p1 = Phase::new(2);
        p1.streams[0].push(TraceRecord::read(ProcId(0), Addr(0)));
        p1.streams[1].push(TraceRecord::read(ProcId(1), Addr(64)));
        let mut p2 = Phase::new(2);
        p2.streams[1].push(TraceRecord::read(ProcId(1), Addr(128)));
        pt.push(p1);
        pt.push(p2);
        let t = pt.interleave(4);
        // Phase 1 records (both procs) strictly precede phase 2 records.
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[2].addr, Addr(128));
        assert_eq!(pt.total_refs(), 3);
    }
}
