//! Trace-level statistics: the quantities reported in Table 1 of the paper.

use crate::first_touch::FirstTouchPlacement;
use crate::record::{ProcId, Trace};
use cache_sim::AccessType;

/// Table-1-style characteristics of one benchmark trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCharacteristics {
    /// Workload name.
    pub name: String,
    /// Problem-size description.
    pub problem_size: String,
    /// Number of processors.
    pub num_procs: usize,
    /// Footprint in megabytes (64-byte-block granularity).
    pub memory_usage_mb: f64,
    /// References issued by the sample processor.
    pub refs_by_sample: u64,
    /// Total trace length.
    pub total_refs: u64,
    /// Fraction of the sample processor's references that are writes.
    pub write_fraction: f64,
    /// Remote access fraction of the sample processor under per-block
    /// first-touch placement.
    pub remote_access_fraction: f64,
}

/// Computes Table-1 characteristics for `trace` from the viewpoint of
/// `sample` (per-block first-touch placement, 64-byte blocks).
#[must_use]
pub fn characterize(
    name: &str,
    problem_size: &str,
    trace: &Trace,
    sample: ProcId,
) -> TraceCharacteristics {
    let placement = FirstTouchPlacement::from_trace(64, trace);
    let refs_by_sample = trace.refs_by(sample);
    let writes_by_sample = trace
        .iter()
        .filter(|r| r.proc == sample && r.op == AccessType::Write)
        .count() as u64;
    TraceCharacteristics {
        name: name.to_owned(),
        problem_size: problem_size.to_owned(),
        num_procs: trace.num_procs(),
        memory_usage_mb: trace.footprint_bytes(64) as f64 / (1024.0 * 1024.0),
        refs_by_sample,
        total_refs: trace.len() as u64,
        write_fraction: if refs_by_sample == 0 {
            0.0
        } else {
            writes_by_sample as f64 / refs_by_sample as f64
        },
        remote_access_fraction: placement.remote_fraction(trace, sample),
    }
}

/// Picks the processor whose remote-access fraction is closest to the mean
/// across all processors — the paper's "most representative" sample
/// selection for irregular benchmarks (Section 3.1).
#[must_use]
pub fn representative_processor(trace: &Trace) -> ProcId {
    let placement = FirstTouchPlacement::from_trace(64, trace);
    let fractions: Vec<f64> = (0..trace.num_procs())
        .map(|p| placement.remote_fraction(trace, ProcId(p)))
        .collect();
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    let best = fractions
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (*a - mean)
                .abs()
                .partial_cmp(&(*b - mean).abs())
                .expect("fractions are finite")
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    ProcId(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use cache_sim::Addr;

    #[test]
    fn characterize_counts() {
        let mut t = Trace::new(2);
        t.push(TraceRecord::write(ProcId(0), Addr(0)));
        t.push(TraceRecord::write(ProcId(1), Addr(64)));
        t.push(TraceRecord::read(ProcId(0), Addr(64))); // remote for P0
        t.push(TraceRecord::read(ProcId(0), Addr(0))); // local
        let c = characterize("t", "tiny", &t, ProcId(0));
        assert_eq!(c.refs_by_sample, 3);
        assert_eq!(c.total_refs, 4);
        assert!((c.write_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.remote_access_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.memory_usage_mb - 128.0 / (1024.0 * 1024.0)).abs() < 1e-12);
    }

    #[test]
    fn representative_processor_is_valid() {
        let mut t = Trace::new(4);
        for i in 0..64u64 {
            t.push(TraceRecord::write(ProcId((i % 4) as usize), Addr(i * 64)));
        }
        for i in 0..64u64 {
            t.push(TraceRecord::read(
                ProcId(((i + 1) % 4) as usize),
                Addr(i * 64),
            ));
        }
        let p = representative_processor(&t);
        assert!(p.0 < 4);
    }
}
