//! Criticality-based costs for uniprocessors (the paper's Section 7
//! future-work direction): "if we could predict the nature of the next
//! access to a cached block, we could assign a high cost to critical load
//! misses and low cost to store misses and non-critical load misses".
//!
//! [`CriticalityCostMap`] classifies blocks by the *kind* of accesses they
//! receive: blocks whose references are predominantly loads get the high
//! (load-criticality) cost; write-dominated blocks — whose misses a store
//! buffer hides — get the low cost. The classification is computed offline
//! from the trace, standing in for the criticality predictors of
//! Srinivasan et al. that the paper cites.

use crate::cost_map::CostMap;
use crate::record::Trace;
use cache_sim::{AccessType, BlockAddr, Cost, CostPair};
use std::collections::HashMap;

/// High cost for load-dominated blocks, low cost for store-dominated ones.
#[derive(Debug, Clone)]
pub struct CriticalityCostMap {
    load_dominated: HashMap<u64, bool>,
    pair: CostPair,
}

impl CriticalityCostMap {
    /// Classifies every block of `trace`: a block is *load-dominated*
    /// (critical) when more than `load_threshold` of its references are
    /// reads.
    ///
    /// # Panics
    ///
    /// Panics if `load_threshold` is not within `[0, 1]`.
    #[must_use]
    pub fn from_trace(trace: &Trace, pair: CostPair, load_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&load_threshold),
            "threshold must be in [0, 1], got {load_threshold}"
        );
        let mut counts: HashMap<u64, (u64, u64)> = HashMap::new();
        for rec in trace {
            let e = counts.entry(rec.block(64).0).or_insert((0, 0));
            match rec.op {
                AccessType::Read => e.0 += 1,
                AccessType::Write => e.1 += 1,
            }
        }
        let load_dominated = counts
            .into_iter()
            .map(|(b, (r, w))| (b, r as f64 > load_threshold * (r + w) as f64))
            .collect();
        CriticalityCostMap {
            load_dominated,
            pair,
        }
    }

    /// Fraction of classified blocks that are load-dominated.
    #[must_use]
    pub fn critical_fraction(&self) -> f64 {
        if self.load_dominated.is_empty() {
            return 0.0;
        }
        self.load_dominated.values().filter(|&&v| v).count() as f64
            / self.load_dominated.len() as f64
    }
}

impl CostMap for CriticalityCostMap {
    fn cost_of(&self, block: BlockAddr) -> Cost {
        self.pair.pick(self.is_high_cost(block))
    }

    fn is_high_cost(&self, block: BlockAddr) -> bool {
        self.load_dominated.get(&block.0).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ProcId, TraceRecord};
    use cache_sim::Addr;

    #[test]
    fn classifies_by_access_mix() {
        let mut t = Trace::new(1);
        // Block 0: all reads. Block 1: all writes. Block 2: mixed 50/50.
        for _ in 0..4 {
            t.push(TraceRecord::read(ProcId(0), Addr(0)));
            t.push(TraceRecord::write(ProcId(0), Addr(64)));
        }
        t.push(TraceRecord::read(ProcId(0), Addr(128)));
        t.push(TraceRecord::write(ProcId(0), Addr(128)));
        let m = CriticalityCostMap::from_trace(&t, CostPair::ratio(8), 0.6);
        assert!(m.is_high_cost(BlockAddr(0)));
        assert!(!m.is_high_cost(BlockAddr(1)));
        assert!(
            !m.is_high_cost(BlockAddr(2)),
            "50% reads is below the 60% threshold"
        );
        assert_eq!(m.cost_of(BlockAddr(0)), Cost(8));
        assert_eq!(m.cost_of(BlockAddr(1)), Cost(1));
    }

    #[test]
    fn unseen_blocks_are_low_cost() {
        let t = Trace::new(1);
        let m = CriticalityCostMap::from_trace(&t, CostPair::ratio(4), 0.5);
        assert!(!m.is_high_cost(BlockAddr(999)));
        assert_eq!(m.critical_fraction(), 0.0);
    }

    #[test]
    fn critical_fraction_counts() {
        let mut t = Trace::new(1);
        t.push(TraceRecord::read(ProcId(0), Addr(0)));
        t.push(TraceRecord::write(ProcId(0), Addr(64)));
        let m = CriticalityCostMap::from_trace(&t, CostPair::ratio(4), 0.5);
        assert!((m.critical_fraction() - 0.5).abs() < 1e-12);
    }
}
