//! A concurrent cache-aside service over a simulated two-tier backend:
//! most records live on a fast local store, a minority on a slow remote
//! one. Worker threads look records up through a shared [`CsrCache`]
//! configured with the ACL policy, whose cost function prices each record
//! by its backend latency — so the cache preferentially retains the
//! records that are expensive to refetch.
//!
//! Run with `cargo run --example concurrent_cache -p csr-cache`.

use csr_cache::{CsrCache, Policy};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 100_000;
const CAPACITY: usize = 2048;
const RECORDS: u64 = 16_384;

/// Simulated backend latency in microseconds: every 16th record is
/// "remote" and ~30x more expensive to fetch.
fn backend_latency_us(key: u64) -> u64 {
    if key.is_multiple_of(16) {
        300
    } else {
        10
    }
}

/// The simulated backend fetch.
fn fetch_from_backend(key: u64) -> String {
    format!("record-{key}")
}

/// A deterministic Zipf-ish sampler: rejection-free inverse-power skew.
fn sample_key(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let u = (*state >> 33) as f64 / (1u64 << 31) as f64;
    // Inverse-CDF of a power-law rank distribution over [1, RECORDS].
    let rank = (RECORDS as f64).powf(u);
    (rank as u64).min(RECORDS - 1)
}

fn main() {
    let cache: Arc<CsrCache<u64, String>> = Arc::new(
        CsrCache::builder(CAPACITY)
            .shards(THREADS)
            .policy(Policy::Acl)
            .cost_fn(|k: &u64, _v: &String| backend_latency_us(*k))
            .build(),
    );
    println!(
        "cache: capacity {} entries, {} shards, policy {}",
        cache.capacity(),
        cache.num_shards(),
        cache.policy_name()
    );

    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                let mut rng = 0x5EED ^ (t as u64) << 32;
                let mut backend_us = 0u64;
                for _ in 0..REQUESTS_PER_THREAD {
                    let key = sample_key(&mut rng);
                    if cache.get(&key).is_none() {
                        // Miss: pay the backend latency, then cache it.
                        backend_us += backend_latency_us(key);
                        cache.insert(key, fetch_from_backend(key));
                    }
                }
                backend_us
            })
        })
        .collect();
    let backend_us: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("worker panicked"))
        .sum();
    let elapsed = start.elapsed();

    let s = cache.stats();
    let total_requests = (THREADS * REQUESTS_PER_THREAD) as u64;
    println!("\n{total_requests} requests from {THREADS} threads in {elapsed:.2?}");
    println!(
        "hit rate {:.1}%  ({} hits / {} lookups, {} evictions, {} reservations)",
        100.0 * s.hit_rate(),
        s.hits,
        s.lookups,
        s.evictions,
        s.reservations
    );
    println!(
        "simulated backend time paid: {:.1} s ({:.1} us/request average)",
        backend_us as f64 / 1e6,
        backend_us as f64 / total_requests as f64
    );
    println!(
        "aggregate miss cost (the metric ACL minimizes): {}",
        s.aggregate_miss_cost
    );
    assert_eq!(s.hits + s.misses, s.lookups);
}
