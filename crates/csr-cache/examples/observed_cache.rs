//! A fully observed [`CsrCache`]: decision counters and sampled op-latency
//! histograms in a `csr-obs` [`Registry`], a bounded decision trace, and
//! both export formats (Prometheus text and JSON) of the same snapshot.
//!
//! Run with `cargo run --example observed_cache -p csr-cache`. Pass a path
//! (e.g. `-- metrics.json`) to also write the JSON snapshot to a file —
//! CI lints that file with the `csr-obs` `jsonlint` example.

use csr_cache::{CsrCache, Policy, SharedObserver};
use csr_obs::export;
use csr_obs::{EventTracer, Registry};
use std::sync::Arc;

const CAPACITY: usize = 1024;
const RECORDS: u64 = 8192;
const REQUESTS: usize = 200_000;

/// Every 16th record is "remote" and ~30x more expensive to refetch.
fn refetch_cost(key: u64) -> u64 {
    if key.is_multiple_of(16) {
        300
    } else {
        10
    }
}

fn main() {
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(EventTracer::new(4096));
    let cache: CsrCache<u64, String> = CsrCache::builder(CAPACITY)
        .shards(4)
        .policy(Policy::Dcl)
        .cost_fn(|k: &u64, _v: &String| refetch_cost(*k))
        .metrics(Arc::clone(&registry))
        .observer(Arc::clone(&tracer) as SharedObserver)
        .latency_sample_every(16)
        .build();

    // A skewed cache-aside workload.
    let mut state = 0x5EEDu64;
    for _ in 0..REQUESTS {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 33) as f64 / (1u64 << 31) as f64;
        let key = ((RECORDS as f64).powf(u) as u64).min(RECORDS - 1);
        if cache.get(&key).is_none() {
            cache.insert(key, format!("record-{key}"));
        }
    }

    let s = cache.stats();
    println!(
        "{} requests: hit rate {:.1}%, miss rate {:.1}%, mean miss cost {:.1}",
        s.lookups,
        100.0 * s.hit_rate(),
        100.0 * s.miss_rate(),
        s.mean_miss_cost()
    );

    let snap = registry.snapshot();
    println!("\n--- Prometheus exposition (scrape this) ---");
    print!("{}", export::prometheus(&snap));

    println!("\n--- last decision events ({} total) ---", tracer.total());
    for t in tracer.events().iter().rev().take(5).rev() {
        println!("#{:<8} {:?}", t.seq, t.event);
    }

    let json = export::json(&snap);
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &json).expect("write metrics snapshot");
        println!("\nwrote JSON snapshot to {path}");
    } else {
        println!("\n--- JSON snapshot (first 400 bytes) ---");
        let cut = json.len().min(400);
        println!("{}...", &json[..cut]);
    }
}
