//! Multi-threaded stress: 8+ threads hammer one cache with a mixed
//! get/insert/remove workload under every policy, then the test checks
//! the global invariants:
//!
//! * `hits + misses == lookups` (after quiescing);
//! * residency never exceeds capacity (checked live from a separate
//!   observer thread and again at the end);
//! * conservation: `insertions == evictions + removals + resident`;
//! * the run terminates (no deadlock — enforced by the harness timeout).

use csr_cache::{CsrCache, Policy};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 40_000;
const CAPACITY: usize = 512;
const UNIVERSE: u64 = 2048;

/// Deterministic per-thread LCG so runs are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn stress(policy: Policy) {
    let cache: Arc<CsrCache<u64, u64>> = Arc::new(
        CsrCache::builder(CAPACITY)
            .shards(8)
            .policy(policy)
            .cost_fn(|k: &u64, _v: &u64| 1 + k % 7)
            .build(),
    );

    // A live observer: capacity must hold at every instant, not just at
    // the end.
    let stop = Arc::new(AtomicBool::new(false));
    let observer = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut checks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                assert!(
                    cache.len() <= cache.capacity(),
                    "{}: resident {} exceeded capacity {}",
                    cache.policy_name(),
                    cache.len(),
                    cache.capacity()
                );
                checks += 1;
                thread::yield_now();
            }
            checks
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                let mut rng = Lcg(0x9E37_79B9 ^ (t as u64) << 32);
                for _ in 0..OPS_PER_THREAD {
                    let r = rng.next();
                    let key = r % UNIVERSE;
                    match r % 10 {
                        // 70% lookups, fill on miss (the cache-aside idiom).
                        0..=6 => {
                            if cache.get(&key).is_none() {
                                cache.insert(key, key * 2);
                            }
                        }
                        // 20% blind inserts (some are overwrites).
                        7 | 8 => {
                            cache.insert(key, key * 3);
                        }
                        // 10% removals.
                        _ => {
                            cache.remove(&key);
                        }
                    }
                }
            })
        })
        .collect();

    for w in workers {
        w.join().expect("worker thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let checks = observer.join().expect("observer thread panicked");
    assert!(checks > 0, "observer never ran");

    // Quiesced: every cross-counter identity must hold exactly.
    let s = cache.stats();
    assert_eq!(
        s.hits + s.misses,
        s.lookups,
        "{policy}: lookup identity violated"
    );
    assert!(
        s.lookups > 0 && s.hits > 0 && s.misses > 0,
        "{policy}: degenerate workload"
    );
    assert_eq!(
        s.insertions,
        s.evictions + s.removals + cache.len() as u64,
        "{policy}: entry conservation violated",
    );
    assert!(cache.len() <= cache.capacity());
    assert!(s.reservations <= s.evictions);

    // Values never tear: every readable value is one this workload wrote.
    for k in 0..UNIVERSE {
        if let Some(v) = cache.get(&k) {
            assert!(
                v == k * 2 || v == k * 3,
                "{policy}: torn value {v} for key {k}"
            );
        }
    }
}

#[test]
fn stress_lru() {
    stress(Policy::Lru);
}

#[test]
fn stress_gd() {
    stress(Policy::Gd);
}

#[test]
fn stress_bcl() {
    stress(Policy::Bcl);
}

#[test]
fn stress_dcl() {
    stress(Policy::Dcl);
}

#[test]
fn stress_acl() {
    stress(Policy::Acl);
}

/// Interleaved `insert` / `remove` / `clear` / read-through on the SAME
/// narrow key range from 8 threads — the path the mixed-workload stress
/// above doesn't cover (it never calls `clear`, and its removals rarely
/// collide on one key). `clear` tears down whole shards while other
/// threads are mid-insert on the very entries being dropped, so this is
/// the sharpest test of the counter discipline: after quiescing,
/// `hits + misses == gets` and entry conservation must hold exactly.
#[test]
fn stress_interleaved_insert_remove_clear() {
    const HOT_KEYS: u64 = 32;
    for policy in [Policy::Lru, Policy::Dcl, Policy::Acl] {
        let cache: Arc<CsrCache<u64, u64>> = Arc::new(
            CsrCache::builder(64)
                .shards(4)
                .policy(policy)
                .cost_fn(|k: &u64, _v: &u64| 1 + k % 5)
                .build(),
        );
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let mut rng = Lcg(0xC1EA2 ^ (t as u64) << 40);
                    for _ in 0..20_000 {
                        let r = rng.next();
                        let key = r % HOT_KEYS;
                        match r % 16 {
                            0..=5 => {
                                if cache.get(&key).is_none() {
                                    cache.insert(key, key * 2);
                                }
                            }
                            6..=8 => {
                                cache.insert(key, key * 3);
                            }
                            9..=11 => {
                                cache.remove(&key);
                            }
                            12..=14 => {
                                let v = cache.get_or_insert_with(key, || (key * 2, 1));
                                assert!(v == key * 2 || v == key * 3);
                            }
                            // 1 in 16 ops drops every shard at once.
                            _ => cache.clear(),
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker thread panicked");
        }

        let s = cache.stats();
        assert_eq!(
            s.hits + s.misses,
            s.lookups,
            "{policy}: lookup identity violated across clear storms"
        );
        assert!(s.removals > 0, "{policy}: clears/removals never landed");
        assert_eq!(
            s.insertions,
            s.evictions + s.removals + cache.len() as u64,
            "{policy}: entry conservation violated across clear storms",
        );
        assert!(cache.len() <= cache.capacity());
        // The cache stays fully usable after the storm.
        cache.insert(1, 42);
        assert_eq!(cache.get(&1), Some(42));
    }
}

/// All worker threads funnelled into a single shard: maximal contention on
/// one mutex, plus the policy core sees a fully serialized event stream.
#[test]
fn stress_single_shard_contention() {
    let cache: Arc<CsrCache<u64, u64>> =
        Arc::new(CsrCache::builder(64).shards(1).policy(Policy::Dcl).build());
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                let mut rng = Lcg(t as u64 + 1);
                for _ in 0..10_000 {
                    let key = rng.next() % 256;
                    if cache.get(&key).is_none() {
                        cache.insert(key, key);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread panicked");
    }
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, s.lookups);
    assert_eq!(s.lookups, (THREADS * 10_000) as u64);
    assert!(cache.len() <= cache.capacity());
}
