//! End-to-end adaptive selection: a phase-shifting trace (zipf →
//! scan-heavy → zipf) must make the per-shard selector flip the live
//! policy at least once, and the adaptive cache must land within 5% of
//! the better of its two candidates' modeled cost savings while clearly
//! beating a weak static baseline.

use csr_cache::{CsrCache, Policy, SelectorConfig};
use std::collections::hash_map::DefaultHasher;
use std::hash::BuildHasher;

/// Deterministic hasher so every run sees the identical trace placement.
#[derive(Clone, Default)]
struct FixedState;

impl BuildHasher for FixedState {
    type Hasher = DefaultHasher;
    fn build_hasher(&self) -> DefaultHasher {
        DefaultHasher::new()
    }
}

/// SplitMix64 step — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn unit(&mut self) -> f64 {
        self.next() as f64 / u64::MAX as f64
    }
}

const KEYS: usize = 4096;
const CAPACITY: usize = 512;
const OPS: usize = 45_000;
const SCAN_BASE: u64 = 1 << 32;
const SCAN_SPACE: u64 = 2048;
const CANDIDATES: (Policy, Policy) = (Policy::Dcl, Policy::Gdsf);

fn cost_of(key: u64) -> u64 {
    if key.is_multiple_of(8) {
        16
    } else {
        1
    }
}

/// Three acts: zipf, scan-heavy (90% cyclic one-touch scans), zipf.
fn phase_trace() -> Vec<u64> {
    let theta = 0.9;
    let mut cdf = Vec::with_capacity(KEYS);
    let mut total = 0.0;
    for rank in 1..=KEYS {
        total += 1.0 / (rank as f64).powf(theta);
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }
    let mut rng = Rng(0xADA9);
    let mut scan_pos = 0u64;
    (0..OPS)
        .map(|i| {
            let scanning = (OPS / 3..2 * OPS / 3).contains(&i);
            if scanning && rng.unit() < 0.9 {
                scan_pos += 1;
                SCAN_BASE + scan_pos % SCAN_SPACE
            } else {
                let u = rng.unit();
                cdf.partition_point(|&c| c < u) as u64
            }
        })
        .collect()
}

/// Replays the trace; returns the modeled cost savings (every hit saves
/// that key's miss cost).
fn score(cache: &CsrCache<u64, u64, FixedState>, trace: &[u64]) -> u64 {
    let mut savings = 0u64;
    for &key in trace {
        if cache.get(&key).is_some() {
            savings += cost_of(key);
        } else {
            cache.insert(key, key);
        }
    }
    savings
}

fn static_cache(policy: Policy) -> CsrCache<u64, u64, FixedState> {
    CsrCache::builder(CAPACITY)
        .shards(1)
        .hasher(FixedState)
        .policy(policy)
        .cost_fn(|k: &u64, _v| cost_of(*k))
        .build()
}

#[test]
fn selector_flips_and_tracks_the_best_candidate() {
    let trace = phase_trace();

    let adaptive: CsrCache<u64, u64, FixedState> = CsrCache::builder(CAPACITY)
        .shards(1)
        .hasher(FixedState)
        .cost_fn(|k: &u64, _v| cost_of(*k))
        .adaptive(SelectorConfig {
            candidates: CANDIDATES,
            sample_every: 1,
            epoch_len: 512,
            hysteresis: 2,
            min_flip_gap: 2,
            ghost_capacity: 0,
        })
        .build();
    assert_eq!(adaptive.policy_name(), "ADAPTIVE");

    let adaptive_savings = score(&adaptive, &trace);
    let first = score(&static_cache(CANDIDATES.0), &trace);
    let second = score(&static_cache(CANDIDATES.1), &trace);
    let weak = score(&static_cache(Policy::Lru), &trace);

    let stats = adaptive.selector_stats().expect("adaptive cache has stats");
    assert!(
        stats.flips >= 1,
        "selector never flipped across the phase shift: {stats:?}"
    );
    assert!(stats.epochs > 2, "too few epochs closed: {stats:?}");
    assert!(stats.sampled_gets > 0 && stats.sampled_fills > 0);

    // The live policy ends on one of the two candidates.
    let live = adaptive.shard_live_policies().expect("live policies");
    assert_eq!(live.len(), 1);
    assert!(
        live[0] == CANDIDATES.0.name() || live[0] == CANDIDATES.1.name(),
        "unexpected live policy {}",
        live[0]
    );

    let best = first.max(second);
    let worst = first.min(second);
    assert!(
        adaptive_savings * 100 >= best * 95,
        "adaptive {adaptive_savings} fell below 95% of best candidate {best} \
         (candidates {first}/{second})"
    );
    assert!(
        adaptive_savings > weak,
        "adaptive {adaptive_savings} did not beat static LRU {weak}"
    );
    // Sanity on the harness itself: the phase shift actually separates
    // the candidates, so the selector had a real decision to make.
    assert!(worst < best, "trace does not separate the candidates");
}
