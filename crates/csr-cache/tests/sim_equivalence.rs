//! Deterministic single-thread equivalence: a 1-shard `CsrCache` driven
//! with an identity hasher must make exactly the same residency decisions
//! as the `cache-sim` simulator running the same policy on one set of the
//! same associativity over an identical reference stream.
//!
//! The identity hasher makes the policy-visible block identity equal the
//! raw key, so the shard's policy core and the simulator's per-set core
//! observe byte-for-byte identical event streams.

use cache_sim::{AccessType, BlockAddr, Cache, Cost, Geometry, Lru, ReplacementPolicy};
use csr::{Acl, Bcl, Dcl, GreedyDual};
use csr_cache::{CsrCache, Policy};
use std::hash::{BuildHasher, Hasher};

const WAYS: usize = 8;
const UNIVERSE: u64 = 24;
const ACCESSES: usize = 4000;

/// A hasher whose output is the last `u64` written — `hash(k) == k`.
#[derive(Clone, Default)]
struct IdentityState;

struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // u64's Hash impl goes through write_u64; this path is only taken
        // by HashMap metadata writes on some platforms.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }
    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

impl BuildHasher for IdentityState {
    type Hasher = IdentityHasher;
    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

/// Skewed costs: every fourth key is 16x more expensive to re-fetch.
fn cost_of(key: u64) -> u64 {
    if key.is_multiple_of(4) {
        16
    } else {
        1
    }
}

/// Deterministic LCG reference stream over the key universe.
fn stream() -> impl Iterator<Item = u64> {
    let mut state = 0x1E12_AC4Eu64;
    std::iter::repeat_with(move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % UNIVERSE
    })
    .take(ACCESSES)
}

fn run_equivalence<P: ReplacementPolicy>(policy: Policy, sim_policy: P) {
    let geom = Geometry::new((WAYS * 64) as u64, 64, WAYS); // exactly one set
    assert_eq!(geom.num_sets(), 1);
    let mut sim = Cache::new(geom, sim_policy);

    let cache: CsrCache<u64, u64, IdentityState> = CsrCache::builder(WAYS)
        .shards(1)
        .policy(policy)
        .cost_fn(|k: &u64, _v: &u64| cost_of(*k))
        .hasher(IdentityState)
        .build();
    assert_eq!(cache.capacity(), WAYS);

    for (step, key) in stream().enumerate() {
        sim.access(BlockAddr(key), AccessType::Read, Cost(cost_of(key)));
        if cache.get(&key).is_none() {
            cache.insert(key, key);
        }

        for probe in 0..UNIVERSE {
            assert_eq!(
                cache.contains(&probe),
                sim.contains(BlockAddr(probe)),
                "{policy}: residency of key {probe} diverged after step {step} (key {key})",
            );
        }
    }

    let stats = cache.stats();
    assert_eq!(stats.lookups, ACCESSES as u64);
    assert_eq!(stats.hits + stats.misses, stats.lookups);
    assert_eq!(
        stats.aggregate_miss_cost,
        sim.stats().aggregate_cost.0,
        "{policy}: aggregate miss cost diverged",
    );
    assert_eq!(stats.misses, stats.insertions);
}

#[test]
fn lru_cache_matches_simulator() {
    run_equivalence(Policy::Lru, Lru::new());
}

#[test]
fn gd_cache_matches_simulator() {
    let geom = Geometry::new((WAYS * 64) as u64, 64, WAYS);
    run_equivalence(Policy::Gd, GreedyDual::new(&geom));
}

#[test]
fn bcl_cache_matches_simulator() {
    let geom = Geometry::new((WAYS * 64) as u64, 64, WAYS);
    run_equivalence(Policy::Bcl, Bcl::new(&geom));
}

#[test]
fn dcl_cache_matches_simulator() {
    let geom = Geometry::new((WAYS * 64) as u64, 64, WAYS);
    run_equivalence(Policy::Dcl, Dcl::new(&geom));
}

#[test]
fn acl_cache_matches_simulator() {
    let geom = Geometry::new((WAYS * 64) as u64, 64, WAYS);
    run_equivalence(Policy::Acl, Acl::new(&geom));
}
