//! The read-through, single-flight path: `get_or_insert_with` /
//! `try_get_or_insert_with` / `insert_with_cost`.
//!
//! The headline property is stampede suppression: N threads missing the
//! same cold key perform ONE origin fetch, with the other N-1 callers
//! blocking on the in-flight fetch and sharing its outcome (counted as
//! `CacheStats::coalesced_fetches`).

use csr_cache::{CsrCache, Policy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

#[test]
fn hit_returns_without_fetching() {
    let cache: CsrCache<u64, u64> = CsrCache::new(8);
    cache.insert(1, 10);
    let v = cache.get_or_insert_with(1, || panic!("must not fetch on a hit"));
    assert_eq!(v, 10);
    let s = cache.stats();
    assert_eq!((s.hits, s.coalesced_fetches), (1, 0));
}

#[test]
fn miss_fetches_once_and_charges_the_measured_cost() {
    let cache: CsrCache<u64, u64> = CsrCache::builder(8)
        .shards(1)
        // A static cost function that must NOT be consulted by the
        // dynamic-cost path.
        .cost_fn(|_k, _v| 999)
        .build();
    let v = cache.get_or_insert_with(7, || (70, 42));
    assert_eq!(v, 70);
    assert_eq!(cache.get(&7), Some(70));
    let s = cache.stats();
    assert_eq!(s.insertions, 1);
    assert_eq!(
        s.aggregate_miss_cost, 42,
        "the fetch's measured cost must be charged, not the CostFn"
    );
}

#[test]
fn insert_with_cost_bypasses_the_cost_fn() {
    let cache: CsrCache<u64, u64> = CsrCache::builder(8).shards(1).cost_fn(|_k, _v| 999).build();
    cache.insert_with_cost(1, 1, 5);
    assert_eq!(cache.stats().aggregate_miss_cost, 5);
    // The static path still goes through the cost function.
    cache.insert(2, 2);
    assert_eq!(cache.stats().aggregate_miss_cost, 5 + 999);
}

#[test]
fn try_variant_does_not_cache_absent_keys() {
    let cache: CsrCache<u64, u64> = CsrCache::new(8);
    let fetches = AtomicU64::new(0);
    for _ in 0..3 {
        let out = cache.try_get_or_insert_with(9, || {
            fetches.fetch_add(1, Ordering::Relaxed);
            Ok::<_, ()>(None)
        });
        assert_eq!(out, Ok(None));
    }
    assert_eq!(
        fetches.load(Ordering::Relaxed),
        3,
        "absent keys are not negatively cached: every call re-fetches"
    );
    assert!(cache.is_empty());
    assert_eq!(cache.stats().insertions, 0);
}

#[test]
fn fetch_error_propagates_and_caches_nothing() {
    let cache: CsrCache<u64, u64> = CsrCache::new(8);
    let out = cache.try_get_or_insert_with(3, || Err("origin down"));
    assert_eq!(out, Err("origin down"));
    assert!(cache.is_empty());
    let s = cache.stats();
    assert_eq!((s.lookups, s.misses, s.insertions), (1, 1, 0));
    // The origin recovers: the same key now fills normally.
    let out = cache.try_get_or_insert_with(3, || Ok::<_, &str>(Some((30, 7))));
    assert_eq!(out, Ok(Some(30)));
    assert_eq!(cache.stats().aggregate_miss_cost, 7);
}

/// Zero is not a valid dynamic cost: a sub-resolution measurement must
/// clamp to 1 instead of producing an entry that cost-sensitive policies
/// evict for free.
#[test]
fn dynamic_cost_zero_clamps_to_one() {
    let cache: CsrCache<u64, u64> = CsrCache::builder(8).shards(1).build();
    cache.insert_with_cost(1, 10, 0);
    assert_eq!(cache.stats().aggregate_miss_cost, 1);
    let v = cache.get_or_insert_with(2, || (20, 0));
    assert_eq!(v, 20);
    let s = cache.stats();
    assert_eq!(s.insertions, 2);
    assert_eq!(
        s.aggregate_miss_cost, 2,
        "both zero-cost fills must have been clamped to 1"
    );
}

/// The satellite's 2-thread stampede: both threads miss the same cold key
/// at the same moment; the fetch closure must run exactly once.
#[test]
fn two_thread_stampede_fetches_once() {
    let cache: Arc<CsrCache<String, u64>> = Arc::new(CsrCache::new(64));
    let fetches = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(2));

    let workers: Vec<_> = (0..2)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let fetches = Arc::clone(&fetches);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                cache.get_or_insert_with("hot".to_string(), || {
                    fetches.fetch_add(1, Ordering::Relaxed);
                    // A slow origin: long enough that the second thread
                    // reliably arrives while the fetch is in flight.
                    thread::sleep(Duration::from_millis(100));
                    (1234, 100_000)
                })
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().expect("worker panicked"), 1234);
    }

    assert_eq!(
        fetches.load(Ordering::Relaxed),
        1,
        "exactly one origin fetch for a stampeded key"
    );
    let s = cache.stats();
    assert_eq!(s.insertions, 1);
    assert_eq!(s.aggregate_miss_cost, 100_000);
    assert_eq!(
        s.coalesced_fetches, 1,
        "the second thread must have ridden the first thread's fetch"
    );
}

/// Many threads, many keys: fetch count equals distinct-key count, never
/// the call count.
#[test]
fn stampede_coalesces_across_many_threads() {
    const THREADS: usize = 8;
    const KEYS: u64 = 16;
    let cache: Arc<CsrCache<u64, u64>> = Arc::new(CsrCache::new(1024));
    let fetches = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let fetches = Arc::clone(&fetches);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for k in 0..KEYS {
                    let v = cache.get_or_insert_with(k, || {
                        fetches.fetch_add(1, Ordering::Relaxed);
                        thread::sleep(Duration::from_millis(2));
                        (k * 10, 1)
                    });
                    assert_eq!(v, k * 10);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }

    assert_eq!(
        fetches.load(Ordering::Relaxed),
        KEYS,
        "one fetch per distinct key, not per calling thread"
    );
    let s = cache.stats();
    assert_eq!(s.insertions, KEYS);
    assert_eq!(s.hits + s.misses, s.lookups);
}

/// The satellite's leader-error stress: the leader's fetch fails while a
/// pack of waiters is coalesced behind it. Waiters must distinguish "the
/// leader errored" (retry with their own fetch) from "the origin has no
/// entry" (which would return `None` to everyone), and the retry must not
/// double-count the miss each waiter already paid on the way in.
#[test]
fn leader_error_wakes_waiters_to_retry_without_double_counting() {
    const WAITERS: u64 = 7;
    let cache: Arc<CsrCache<u64, u64>> = Arc::new(CsrCache::builder(64).shards(1).build());
    let fetches = Arc::new(AtomicU64::new(0));
    // Leader + waiters + the unblocking rendezvous inside the leader's
    // fetch closure: everyone is en route before the fetch fails.
    let barrier = Arc::new(Barrier::new(WAITERS as usize + 1));

    let leader = {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            cache.try_get_or_insert_with(5, move || {
                barrier.wait(); // every waiter thread is launched
                thread::sleep(Duration::from_millis(50)); // ... and coalesced
                Err("origin down")
            })
        })
    };
    let waiters: Vec<_> = (0..WAITERS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            let fetches = Arc::clone(&fetches);
            thread::spawn(move || {
                barrier.wait();
                cache.try_get_or_insert_with(5, move || {
                    fetches.fetch_add(1, Ordering::Relaxed);
                    Ok::<_, &str>(Some((55, 9)))
                })
            })
        })
        .collect();

    assert_eq!(
        leader.join().expect("leader must not panic"),
        Err("origin down"),
        "the origin failure must reach the leading caller"
    );
    for w in waiters {
        assert_eq!(
            w.join().expect("waiter must not panic"),
            Ok(Some(55)),
            "waiters retry after a leader error instead of inheriting it"
        );
    }
    assert_eq!(
        fetches.load(Ordering::Relaxed),
        1,
        "exactly one waiter re-led the fetch; the rest coalesced again"
    );
    let s = cache.stats();
    assert_eq!(s.insertions, 1);
    assert_eq!(s.aggregate_miss_cost, 9);
    // The double-counting regression would show up as extra lookups or
    // misses from the waiters' retry pass: every caller must be on the
    // books exactly once. (A pathologically delayed waiter may score its
    // one lookup as a hit, so only the totals are exact.)
    assert_eq!(
        s.lookups,
        WAITERS + 1,
        "each caller pays exactly one counted lookup; retries stay off the books"
    );
    assert_eq!(s.hits + s.misses, s.lookups);
}

/// A panicking leader must not wedge its waiters: they retry, one of them
/// fetching successfully.
#[test]
fn leader_panic_releases_waiters() {
    let cache: Arc<CsrCache<u64, u64>> = Arc::new(CsrCache::new(8));
    let barrier = Arc::new(Barrier::new(2));

    let leader = {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            cache.get_or_insert_with(5, move || {
                barrier.wait(); // the waiter is definitely en route
                thread::sleep(Duration::from_millis(50));
                panic!("origin exploded");
            })
        })
    };
    let waiter = {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            barrier.wait();
            // Arrive while the doomed fetch is in flight.
            thread::sleep(Duration::from_millis(5));
            cache.get_or_insert_with(5, || (55, 1))
        })
    };

    assert!(leader.join().is_err(), "the leader's panic must propagate");
    assert_eq!(waiter.join().expect("waiter must not panic"), 55);
    assert_eq!(cache.get(&5), Some(55));
}

/// The single-flight path composes with every policy and keeps the stats
/// identities intact under concurrency.
#[test]
fn read_through_under_all_policies() {
    for policy in Policy::ALL {
        let cache: Arc<CsrCache<u64, u64>> =
            Arc::new(CsrCache::builder(128).shards(4).policy(policy).build());
        let workers: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let k = (i * 7 + t) % 512;
                        let v = cache.get_or_insert_with(k, || (k + 1, 1 + k % 9));
                        assert_eq!(v, k + 1, "{policy}: wrong value for {k}");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker panicked");
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, s.lookups, "{policy}");
        assert!(cache.len() <= cache.capacity(), "{policy}");
    }
}
