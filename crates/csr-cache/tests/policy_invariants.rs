//! Cross-policy invariant suite: every core behind [`Policy`] — the
//! paper's cost-sensitive set and the modern zoo — must uphold the shard
//! contract under identical churn:
//!
//! * victims are always valid occupied ways (the shard would index out of
//!   its slab and panic otherwise),
//! * the entry accounting balances: every insertion is either still
//!   resident, was evicted, or was removed,
//! * a fixed seed and a fixed hasher make runs bit-for-bit reproducible,
//! * decision events delivered to an [`Observer`](csr_obs::Observer)
//!   agree with [`CacheStats`](csr_cache::CacheStats).

use csr_cache::{CsrCache, Policy};
use csr_obs::CountingObserver;
use std::collections::hash_map::DefaultHasher;
use std::hash::BuildHasher;
use std::sync::Arc;

/// Deterministic hasher (`DefaultHasher::new()` uses fixed keys), so the
/// same workload maps keys to the same shards and slots on every run.
#[derive(Clone, Default)]
struct FixedState;

impl BuildHasher for FixedState {
    type Hasher = DefaultHasher;
    fn build_hasher(&self) -> DefaultHasher {
        DefaultHasher::new()
    }
}

/// Deterministic LCG for reproducible workloads.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

const CAPACITY: usize = 128;
const KEYS: u64 = 600;

fn build(policy: Policy) -> CsrCache<u64, u64, FixedState> {
    CsrCache::builder(CAPACITY)
        .shards(2)
        .hasher(FixedState)
        .policy(policy)
        .cost_fn(|k, _v| if k % 7 == 0 { 32 } else { 1 + k % 4 })
        .build()
}

/// Get-then-insert churn with occasional in-place updates and removes:
/// exercises every policy callback (hit, miss, fill, evict, remove).
fn churn(cache: &CsrCache<u64, u64, FixedState>, ops: usize, seed: u64) {
    let mut rng = Lcg(seed);
    for i in 0..ops {
        let key = rng.next() % KEYS;
        match i % 23 {
            7 => {
                cache.insert(key, key.wrapping_mul(31));
            }
            15 => {
                cache.remove(&key);
            }
            _ => {
                if cache.get(&key).is_none() {
                    cache.insert(key, key * 3);
                }
            }
        }
    }
}

/// The keys-much-larger-than-capacity churn forces evictions in every
/// shard; any core returning an out-of-range or unoccupied way would
/// panic the shard's slab indexing long before the asserts run.
#[test]
fn every_policy_survives_churn_and_accounting_balances() {
    for policy in Policy::ALL {
        let cache = build(policy);
        churn(&cache, 40_000, 0xFEED);
        let stats = cache.stats();
        let name = policy.name();

        assert!(cache.len() <= CAPACITY, "{name}: over capacity");
        assert!(stats.evictions > 0, "{name}: churn never evicted");
        assert!(stats.hits > 0 && stats.misses > 0, "{name}: degenerate run");
        assert_eq!(stats.lookups, stats.hits + stats.misses, "{name}");
        // Every filled entry is resident, was evicted, or was removed.
        assert_eq!(
            stats.insertions,
            stats.evictions + stats.removals + cache.len() as u64,
            "{name}: entry accounting does not balance"
        );
    }
}

#[test]
fn every_policy_survives_clear_mid_churn() {
    for policy in Policy::ALL {
        let cache = build(policy);
        churn(&cache, 10_000, 0xC1EA);
        cache.clear();
        assert_eq!(cache.len(), 0, "{}", policy.name());
        churn(&cache, 10_000, 0xC1EB);
        let stats = cache.stats();
        assert!(!cache.is_empty(), "{}: dead after clear", policy.name());
        assert_eq!(
            stats.insertions,
            stats.evictions + stats.removals + cache.len() as u64,
            "{}: accounting broken across clear",
            policy.name()
        );
    }
}

#[test]
fn fixed_seed_runs_are_deterministic_for_every_policy() {
    for policy in Policy::ALL {
        let a = build(policy);
        let b = build(policy);
        churn(&a, 30_000, 0xD3AD);
        churn(&b, 30_000, 0xD3AD);
        let name = policy.name();
        assert_eq!(a.stats(), b.stats(), "{name}: stats diverged");
        assert_eq!(a.len(), b.len(), "{name}: occupancy diverged");
        for key in 0..KEYS {
            assert_eq!(
                a.contains(&key),
                b.contains(&key),
                "{name}: contents diverged at key {key}"
            );
        }
    }
}

/// The shard documents that `on_miss` is delivered once for the get-miss
/// and once more for the fresh insert, and `on_hit` once per get-hit and
/// per in-place update — so the observer's counts relate to the cache
/// stats by exact identities, for every core in the zoo.
#[test]
fn observer_events_match_stats_for_every_policy() {
    for policy in Policy::ALL {
        let obs = Arc::new(CountingObserver::default());
        let cache: CsrCache<u64, u64, FixedState> = CsrCache::builder(CAPACITY)
            .shards(2)
            .hasher(FixedState)
            .policy(policy)
            .observer(obs.clone())
            .cost_fn(|k, _v| if k % 7 == 0 { 32 } else { 1 + k % 4 })
            .build();
        churn(&cache, 20_000, 0x0B5E);

        let stats = cache.stats();
        let counts = obs.counts();
        let name = policy.name();
        assert_eq!(counts.hits, stats.hits + stats.updates, "{name}: hits");
        assert_eq!(
            counts.misses,
            stats.misses + stats.insertions,
            "{name}: misses"
        );
        assert_eq!(counts.evictions, stats.evictions, "{name}: evictions");
    }
}
