//! The acceptance criterion of the cost-sensitive cache: on a skewed-cost
//! Zipf workload at equal capacity, a DCL- or ACL-backed cache must pay a
//! lower aggregate miss cost than the sharded-LRU baseline.
//!
//! The workload mirrors the paper's CC-NUMA motivation translated to a
//! software cache: a minority of keys are "remote" (expensive to refetch),
//! the rest "local" (cheap), and popularity follows a Zipf law so the
//! cache is under genuine capacity pressure from the distribution's tail.

use csr_cache::{CacheStats, CsrCache, Policy};
use mem_trace::workloads::synthetic::ZipfRandom;
use mem_trace::workloads::Workload;
use std::hash::{BuildHasher, Hasher};

/// A fixed splitmix-based hasher: every run and every policy sees the
/// identical shard assignment, so cost differences are the policy's alone.
#[derive(Clone, Default)]
struct FixedState;

struct FixedHasher(u64);

impl Hasher for FixedHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, i: u64) {
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(self.0);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

impl BuildHasher for FixedState {
    type Hasher = FixedHasher;
    fn build_hasher(&self) -> FixedHasher {
        FixedHasher(0)
    }
}

const CAPACITY: usize = 512;
const SHARDS: usize = 4;
const FOOTPRINT: usize = 4096;
const REFS: usize = 150_000;
const EXPENSIVE_COST: u64 = 32;
const CHEAP_COST: u64 = 1;

/// One key in sixteen is expensive — a "remote" entry in NUMA terms.
fn cost_of(key: u64) -> u64 {
    if key.is_multiple_of(16) {
        EXPENSIVE_COST
    } else {
        CHEAP_COST
    }
}

fn zipf_keys() -> Vec<u64> {
    let w = ZipfRandom {
        refs: REFS,
        blocks: FOOTPRINT,
        exponent: 0.9,
        write_fraction: 0.0,
    };
    w.generate(0xC05E_57AE)
        .iter()
        .map(|r| r.block(64).0)
        .collect()
}

/// Cache-aside replay of the reference stream under one policy.
fn run(policy: Policy, keys: &[u64]) -> CacheStats {
    let cache: CsrCache<u64, u64, FixedState> = CsrCache::builder(CAPACITY)
        .shards(SHARDS)
        .policy(policy)
        .cost_fn(|k: &u64, _v: &u64| cost_of(*k))
        .hasher(FixedState)
        .build();
    for &k in keys {
        if cache.get(&k).is_none() {
            cache.insert(k, k);
        }
    }
    cache.stats()
}

#[test]
fn dcl_and_acl_beat_sharded_lru_on_aggregate_miss_cost() {
    let keys = zipf_keys();
    let lru = run(Policy::Lru, &keys);
    let dcl = run(Policy::Dcl, &keys);
    let acl = run(Policy::Acl, &keys);

    assert!(
        dcl.aggregate_miss_cost < lru.aggregate_miss_cost,
        "DCL must beat LRU: DCL cost {} vs LRU cost {}",
        dcl.aggregate_miss_cost,
        lru.aggregate_miss_cost,
    );
    assert!(
        acl.aggregate_miss_cost < lru.aggregate_miss_cost,
        "ACL must beat LRU: ACL cost {} vs LRU cost {}",
        acl.aggregate_miss_cost,
        lru.aggregate_miss_cost,
    );

    // The savings must come from reservations actually firing.
    assert!(
        dcl.reservations > 0,
        "DCL never reserved an expensive entry"
    );
    assert_eq!(lru.reservations, 0, "LRU must never bypass the LRU victim");

    // And not from trading away an absurd amount of hit rate: the paper's
    // policies accept a bounded miss increase for a larger cost saving.
    assert!(
        dcl.hit_rate() > lru.hit_rate() * 0.75,
        "DCL hit rate {:.3} collapsed vs LRU {:.3}",
        dcl.hit_rate(),
        lru.hit_rate(),
    );
}

#[test]
fn bcl_also_beats_lru() {
    let keys = zipf_keys();
    let lru = run(Policy::Lru, &keys);
    let bcl = run(Policy::Bcl, &keys);
    assert!(
        bcl.aggregate_miss_cost < lru.aggregate_miss_cost,
        "BCL must beat LRU: BCL cost {} vs LRU cost {}",
        bcl.aggregate_miss_cost,
        lru.aggregate_miss_cost,
    );
}

/// Under uniform costs the cost-sensitive machinery must not hurt: every
/// policy degenerates to (near-)LRU behaviour and pays the same cost.
#[test]
fn uniform_costs_are_a_wash() {
    let keys = zipf_keys();
    let run_uniform = |policy: Policy| -> CacheStats {
        let cache: CsrCache<u64, u64, FixedState> = CsrCache::builder(CAPACITY)
            .shards(SHARDS)
            .policy(policy)
            .hasher(FixedState)
            .build();
        for &k in &keys {
            if cache.get(&k).is_none() {
                cache.insert(k, k);
            }
        }
        cache.stats()
    };
    let lru = run_uniform(Policy::Lru);
    for policy in [Policy::Bcl, Policy::Dcl, Policy::Acl] {
        let s = run_uniform(policy);
        assert_eq!(
            s.aggregate_miss_cost, lru.aggregate_miss_cost,
            "{policy}: uniform-cost behaviour diverged from LRU",
        );
        assert_eq!(s.reservations, 0, "{policy}: reserved under uniform costs");
    }
}
