//! Observability integration: the registry's decision counters must agree
//! exactly with [`CacheStats`], the sampled latency histograms must count
//! the operations they saw, and the Prometheus and JSON exporters must
//! round-trip the same numbers.

use csr_cache::{CsrCache, Policy, SharedObserver};
use csr_obs::export;
use csr_obs::{CountingObserver, Json, MetricsObserver, Registry};
use std::sync::Arc;

const LATENCY_FAMILY: &str = "csr_cache_op_latency_ns";

/// Deterministic LCG for reproducible workloads.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A get-then-insert workload with skewed costs over a small key universe.
fn run_workload(cache: &CsrCache<u64, u64>, ops: usize) {
    let mut rng = Lcg(7);
    for _ in 0..ops {
        let key = rng.next() % 600;
        if cache.get(&key).is_none() {
            cache.insert(key, key * 3);
        }
    }
}

fn observed_cache(registry: &Arc<Registry>, policy: Policy) -> CsrCache<u64, u64> {
    CsrCache::builder(256)
        .shards(4)
        .policy(policy)
        .cost_fn(|k, _v| if k % 5 == 0 { 16 } else { 1 })
        .metrics(Arc::clone(registry))
        .latency_sample_every(1)
        .build()
}

fn counter_value(registry: &Registry, policy: &str, event: &str) -> u64 {
    registry
        .snapshot()
        .family(MetricsObserver::FAMILY)
        .expect("event family registered")
        .sample_with(&[("policy", policy), ("event", event)])
        .expect("event sample registered")
        .value
        .as_counter()
        .expect("counter sample")
}

#[test]
fn registry_counters_match_cache_stats() {
    let registry = Arc::new(Registry::new());
    let cache = observed_cache(&registry, Policy::Dcl);
    run_workload(&cache, 50_000);

    let stats = cache.stats();
    assert!(stats.evictions > 0 && stats.reservations > 0 && stats.hits > 0);

    // Single-threaded, so the identities are exact.
    assert_eq!(counter_value(&registry, "DCL", "evict"), stats.evictions);
    assert_eq!(
        counter_value(&registry, "DCL", "reserve"),
        stats.reservations
    );
    // The policy sees a hit per get-hit and per in-place update, and a
    // miss per get-miss and per fresh insert (the get-then-insert flow's
    // documented second delivery).
    assert_eq!(
        counter_value(&registry, "DCL", "hit"),
        stats.hits + stats.updates
    );
    assert_eq!(
        counter_value(&registry, "DCL", "miss"),
        stats.misses + stats.insertions
    );
}

#[test]
fn latency_histograms_count_sampled_ops() {
    let registry = Arc::new(Registry::new());
    let cache = observed_cache(&registry, Policy::Acl);
    run_workload(&cache, 20_000);

    let stats = cache.stats();
    let snap = registry.snapshot();
    let fam = snap.family(LATENCY_FAMILY).expect("latency family");
    // sample_every(1): every op of every shard lands in its histogram.
    let count_of = |op: &str| {
        fam.samples
            .iter()
            .filter(|s| s.labels.iter().any(|(k, v)| k == "op" && v == op))
            .map(|s| s.value.as_histogram().expect("histogram sample").count())
            .sum::<u64>()
    };
    assert_eq!(count_of("get"), stats.lookups);
    assert_eq!(count_of("insert"), stats.insertions + stats.updates);
    assert_eq!(cache.num_shards(), 4);
    assert_eq!(
        fam.samples.len(),
        2 * cache.num_shards(),
        "one histogram per shard per op"
    );
    let merged = fam.merged_histogram().expect("histogram family");
    assert_eq!(
        merged.count(),
        stats.lookups + stats.insertions + stats.updates
    );
}

#[test]
fn default_sampling_records_a_subset() {
    let registry = Arc::new(Registry::new());
    let cache: CsrCache<u64, u64> = CsrCache::builder(64)
        .shards(1)
        .metrics(Arc::clone(&registry))
        .build(); // default 1-in-64 sampling
    for k in 0..1000u64 {
        cache.insert(k, k);
    }
    let snap = registry.snapshot();
    let merged = snap
        .family(LATENCY_FAMILY)
        .and_then(|f| f.merged_histogram())
        .expect("latency family");
    // ceil(1000 / 64) = 16 sampled inserts, and nothing more.
    assert_eq!(merged.count(), 16);
}

#[test]
fn user_observer_composes_with_metrics() {
    let registry = Arc::new(Registry::new());
    let counting = Arc::new(CountingObserver::new());
    let cache: CsrCache<u64, u64> = CsrCache::builder(256)
        .shards(4)
        .policy(Policy::Bcl)
        .cost_fn(|k, _v| 1 + k % 7)
        .metrics(Arc::clone(&registry))
        .observer(Arc::clone(&counting) as SharedObserver)
        .build();
    run_workload(&cache, 30_000);

    let counts = counting.counts();
    let stats = cache.stats();
    assert_eq!(counts.evictions, stats.evictions);
    assert_eq!(counts.reservations, stats.reservations);
    // Both sinks observed the identical event stream.
    assert_eq!(counter_value(&registry, "BCL", "evict"), counts.evictions);
    assert_eq!(
        counter_value(&registry, "BCL", "reserve"),
        counts.reservations
    );
    assert_eq!(
        counter_value(&registry, "BCL", "depreciate"),
        counts.depreciations
    );
}

#[test]
fn prometheus_and_json_round_trip_the_same_numbers() {
    let registry = Arc::new(Registry::new());
    let cache = observed_cache(&registry, Policy::Dcl);
    run_workload(&cache, 10_000);

    let snap = registry.snapshot();
    let prom = export::prometheus(&snap);
    let json = Json::parse(&export::json(&snap)).expect("exported JSON must parse");

    let stats = cache.stats();
    // Prometheus: the eviction counter line carries the exact stat
    // (labels render sorted: event before policy).
    let evict_line = format!(
        "csr_policy_events_total{{event=\"evict\",policy=\"DCL\"}} {}",
        stats.evictions
    );
    assert!(
        prom.lines().any(|l| l == evict_line),
        "missing or mismatched line {evict_line:?} in:\n{prom}"
    );

    // JSON: walk to the same sample and compare against both the stat and
    // the Prometheus view.
    let families = json
        .get("families")
        .and_then(Json::as_arr)
        .expect("families array");
    let events = families
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some("csr_policy_events_total"))
        .expect("event family in JSON");
    let evict_value = events
        .get("samples")
        .and_then(Json::as_arr)
        .expect("samples array")
        .iter()
        .find(|s| {
            s.get("labels")
                .and_then(|l| l.get("event"))
                .and_then(Json::as_str)
                == Some("evict")
        })
        .and_then(|s| s.get("value"))
        .and_then(Json::as_i64)
        .expect("evict sample value");
    assert_eq!(evict_value, i64::try_from(stats.evictions).unwrap());

    // Histograms: JSON count equals the Prometheus `_count` line.
    let lookups = stats.lookups;
    let hist_counts: i64 = families
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some(LATENCY_FAMILY))
        .and_then(|f| f.get("samples"))
        .and_then(Json::as_arr)
        .expect("latency samples")
        .iter()
        .filter(|s| {
            s.get("labels")
                .and_then(|l| l.get("op"))
                .and_then(Json::as_str)
                == Some("get")
        })
        .map(|s| {
            s.get("value")
                .and_then(|v| v.get("count"))
                .and_then(Json::as_i64)
                .expect("histogram count")
        })
        .sum();
    assert_eq!(hist_counts, i64::try_from(lookups).unwrap());
}
