//! Aggregated cache statistics.
//!
//! Every shard keeps its own lock-free-readable counters (plain
//! `AtomicU64`s mutated under the shard lock, loaded without it);
//! [`CacheStats`](crate::CacheStats) is the roll-up snapshot the cache
//! returns from [`CsrCache::stats`](crate::CsrCache::stats).

/// A point-in-time snapshot of the counters of a [`CsrCache`](crate::CsrCache)
/// (or of one of its shards).
///
/// Because shards are read without taking their locks, a snapshot taken
/// while other threads are active is a *consistent-enough* view: each
/// counter is exact, but counters may be skewed against each other by the
/// handful of operations in flight. Quiesce the cache first when exact
/// cross-counter identities (e.g. `hits + misses == lookups`) must hold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Calls to `get`.
    pub lookups: u64,
    /// Lookups that found the key resident.
    pub hits: u64,
    /// Lookups that did not find the key.
    pub misses: u64,
    /// Inserts that filled a previously absent key.
    pub insertions: u64,
    /// Inserts that overwrote a resident key in place.
    pub updates: u64,
    /// Entries displaced to make room for a fill.
    pub evictions: u64,
    /// Evictions that spared the LRU entry for a cheaper one — the
    /// reservations of the cost-sensitive policies (for GreedyDual, its
    /// non-LRU victim selections).
    pub reservations: u64,
    /// Entries dropped by explicit `remove` or `clear`.
    pub removals: u64,
    /// Sum of the costs of all fills: the total cost paid to (re)populate
    /// the cache — the quantity the cost-sensitive policies minimize.
    pub aggregate_miss_cost: u64,
    /// Misses resolved by riding another caller's in-flight fetch instead
    /// of fetching again (the single-flight coalescing of
    /// [`CsrCache::get_or_insert_with`](crate::CsrCache::get_or_insert_with)) —
    /// each one is an origin fetch that a naive cache-aside loop would
    /// have duplicated.
    pub coalesced_fetches: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]` (zero when no lookups).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of lookups that missed, in `[0, 1]` (zero when no
    /// lookups). Complements [`hit_rate`](Self::hit_rate):
    /// `hit_rate + miss_rate == 1` whenever any lookup happened.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }

    /// Mean cost paid per fill — `aggregate_miss_cost / insertions` (zero
    /// when nothing was inserted). Under a cost-sensitive policy this is
    /// the number the reservations push down relative to LRU: the same
    /// miss count is worth less when the misses are the cheap ones.
    #[must_use]
    pub fn mean_miss_cost(&self) -> f64 {
        if self.insertions == 0 {
            0.0
        } else {
            self.aggregate_miss_cost as f64 / self.insertions as f64
        }
    }

    /// Accumulates `other` into `self` (counter-wise sum), for rolling
    /// per-shard snapshots into a cache-wide one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.updates += other.updates;
        self.evictions += other.evictions;
        self.reservations += other.reservations;
        self.removals += other.removals;
        self.aggregate_miss_cost += other.aggregate_miss_cost;
        self.coalesced_fetches += other.coalesced_fetches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            lookups: 4,
            hits: 1,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_complements_hit_rate() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
        let s = CacheStats {
            lookups: 8,
            hits: 3,
            misses: 5,
            ..CacheStats::default()
        };
        assert!((s.miss_rate() - 0.625).abs() < 1e-12);
        assert!((s.hit_rate() + s.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_miss_cost_averages_fills() {
        assert_eq!(CacheStats::default().mean_miss_cost(), 0.0);
        let s = CacheStats {
            insertions: 4,
            aggregate_miss_cost: 22,
            ..CacheStats::default()
        };
        assert!((s.mean_miss_cost() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CacheStats {
            lookups: 1,
            aggregate_miss_cost: 5,
            ..CacheStats::default()
        };
        let b = CacheStats {
            lookups: 2,
            evictions: 3,
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.lookups, 3);
        assert_eq!(a.evictions, 3);
        assert_eq!(a.aggregate_miss_cost, 5);
    }
}
