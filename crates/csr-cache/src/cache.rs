//! The sharded, thread-safe, cost-aware cache.

use cache_sim::BlockAddr;
use csr::EvictionPolicy;
use csr_obs::{MetricsObserver, Registry};
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

use crate::policy::{Policy, SharedObserver};
use crate::selector::{SelectorCell, SelectorConfig, SelectorShared, SelectorStats};
use crate::shard::{Shard, ShardMetrics};
use crate::stats::CacheStats;

/// The user-supplied miss-cost function: invoked once per fill with the key
/// and value being inserted, returning the cost of re-obtaining that entry
/// on a future miss (latency, bytes, money — any additive unit).
pub type CostFn<K, V> = dyn Fn(&K, &V) -> u64 + Send + Sync;

/// Default latency sampling interval: one in 64 operations is timed.
const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Where shard policy cores come from: a built-in [`Policy`] (which can be
/// wrapped with observers at build time) or a user factory (which attaches
/// its own observers, if any).
enum PolicySource {
    Builtin(Policy),
    Custom(Box<dyn Fn(usize) -> Box<dyn EvictionPolicy + Send>>),
}

/// Configures and builds a [`CsrCache`]. Created by [`CsrCache::builder`].
pub struct CacheBuilder<K, V, S = RandomState> {
    capacity: usize,
    shards: Option<usize>,
    policy: PolicySource,
    policy_name: &'static str,
    cost_fn: Arc<CostFn<K, V>>,
    hasher: S,
    registry: Option<Arc<Registry>>,
    observer: Option<SharedObserver>,
    sample_every: u64,
    adaptive: Option<SelectorConfig>,
}

impl<K, V> CacheBuilder<K, V, RandomState> {
    fn new(capacity: usize) -> Self {
        CacheBuilder {
            capacity,
            shards: None,
            policy: PolicySource::Builtin(Policy::Lru),
            policy_name: Policy::Lru.name(),
            cost_fn: Arc::new(|_, _| 1),
            hasher: RandomState::new(),
            registry: None,
            observer: None,
            sample_every: DEFAULT_SAMPLE_EVERY,
            adaptive: None,
        }
    }
}

impl<K, V, S> CacheBuilder<K, V, S> {
    /// Sets the number of shards. Rounded up to a power of two and capped
    /// so that every shard holds at least one entry. Defaults to a power
    /// of two near the machine's available parallelism.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = Some(shards);
        self
    }

    /// Selects one of the built-in replacement policies ([`Policy`]).
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = PolicySource::Builtin(policy);
        self.policy_name = policy.name();
        self
    }

    /// Supplies an arbitrary policy: `factory` is called once per shard
    /// with the shard's capacity (its number of "ways") and returns the
    /// core driving that shard's evictions.
    ///
    /// [`observer`](Self::observer) and the decision counters of
    /// [`metrics`](Self::metrics) apply only to built-in policies — a
    /// custom factory attaches its own observers to the cores it builds.
    #[must_use]
    pub fn policy_with(
        mut self,
        name: &'static str,
        factory: impl Fn(usize) -> Box<dyn EvictionPolicy + Send> + 'static,
    ) -> Self {
        self.policy = PolicySource::Custom(Box::new(factory));
        self.policy_name = name;
        self
    }

    /// Registers the cache's metrics in `registry`:
    ///
    /// * `csr_policy_events_total{policy, event}` — decision counters
    ///   (hits, misses, evictions, reservations, depreciations, ETD hits,
    ///   automaton flips) fed by the shards' policy cores;
    /// * `csr_cache_op_latency_ns{policy, op, shard}` — sampled per-shard
    ///   `get`/`insert` latency histograms (see
    ///   [`latency_sample_every`](Self::latency_sample_every)).
    ///
    /// Export the registry with `csr_obs::export::prometheus` or
    /// `csr_obs::export::json` (also available through
    /// [`CsrCache::registry`]).
    #[must_use]
    pub fn metrics(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Attaches a decision observer to every shard's policy core (built-in
    /// policies only). `obs` is shared by all shards, which call it under
    /// their respective locks; pass an `Arc<CountingObserver>` or
    /// `Arc<EventTracer>` from `csr_obs` and keep a clone to read.
    ///
    /// Composes with [`metrics`](Self::metrics): both receive every event.
    #[must_use]
    pub fn observer(mut self, obs: SharedObserver) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Sets the latency sampling interval: one in `n` operations (per
    /// shard, per op kind) is timed and recorded when
    /// [`metrics`](Self::metrics) is enabled. Defaults to 64.
    ///
    /// # Sampling skew
    ///
    /// Deterministic 1-in-`n` sampling is not uniform over *time*: ops are
    /// picked by arrival rank, so phases issuing many fast ops contribute
    /// proportionally more samples than sparse phases — the histogram
    /// approximates the per-operation latency distribution, not the
    /// time-weighted one. The timed ops also carry the cost of two clock
    /// reads (tens of nanoseconds), slightly inflating the recorded tail.
    /// `n = 1` times every operation exactly at maximal overhead.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn latency_sample_every(mut self, n: u64) -> Self {
        assert!(n > 0, "sample interval must be positive");
        self.sample_every = n;
        self
    }

    /// Enables **online adaptive policy selection**: instead of committing
    /// to one policy, every shard shadow-scores the two
    /// [`SelectorConfig::candidates`] on a key sample of its own traffic
    /// (each candidate runs a key-only ghost miniature of the shard) and
    /// hot-flips its live core to whichever accrues more modeled cost
    /// savings, with hysteresis. The cache reports policy name
    /// `"ADAPTIVE"`; per-candidate scores, epochs and flips are readable
    /// via [`CsrCache::selector_stats`] and exported as
    /// `csr_cache_selector_*` when [`metrics`](Self::metrics) is enabled,
    /// and every flip reaches the [`observer`](Self::observer) as a
    /// `policy_flip` event.
    ///
    /// Overrides any earlier [`policy`](Self::policy) /
    /// [`policy_with`](Self::policy_with) choice: shards start on
    /// `candidates.0`.
    #[must_use]
    pub fn adaptive(mut self, config: SelectorConfig) -> Self {
        self.adaptive = Some(config);
        self
    }

    /// Sets the miss-cost function. Uniform cost 1 by default (under which
    /// every cost-sensitive policy degenerates to its LRU behaviour).
    #[must_use]
    pub fn cost_fn(mut self, f: impl Fn(&K, &V) -> u64 + Send + Sync + 'static) -> Self {
        self.cost_fn = Arc::new(f);
        self
    }

    /// Replaces the hash builder (shared by shard selection and the shard
    /// index maps). Useful for deterministic tests.
    #[must_use]
    pub fn hasher<S2: BuildHasher + Clone>(self, hasher: S2) -> CacheBuilder<K, V, S2> {
        CacheBuilder {
            capacity: self.capacity,
            shards: self.shards,
            policy: self.policy,
            policy_name: self.policy_name,
            cost_fn: self.cost_fn,
            hasher,
            registry: self.registry,
            observer: self.observer,
            sample_every: self.sample_every,
            adaptive: self.adaptive,
        }
    }
}

impl<K: Hash + Eq + Clone, V, S: BuildHasher + Clone> CacheBuilder<K, V, S> {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn build(self) -> CsrCache<K, V, S> {
        assert!(self.capacity > 0, "cache capacity must be positive");
        let requested = self.shards.unwrap_or_else(default_shards);
        let shards = effective_shards(requested, self.capacity);
        let per_shard = self.capacity.div_ceil(shards);

        // Adaptive selection overrides the policy choice: shards start on
        // the first candidate and may flip per epoch thereafter.
        let policy_name = if self.adaptive.is_some() {
            "ADAPTIVE"
        } else {
            self.policy_name
        };
        let policy = match self.adaptive {
            Some(cfg) => PolicySource::Builtin(cfg.candidates.0),
            None => self.policy,
        };

        // Combine the metrics feed and the user observer; built-in cores
        // receive the combination, custom factories their own wiring.
        let policy_obs: Option<SharedObserver> = match (&self.registry, self.observer) {
            (Some(reg), Some(user)) => {
                let metrics = MetricsObserver::new(reg, policy_name);
                Some(Arc::new((metrics, user)))
            }
            (Some(reg), None) => Some(Arc::new(MetricsObserver::new(reg, policy_name))),
            (None, Some(user)) => Some(user),
            (None, None) => None,
        };

        let selector_shared = self.adaptive.map(|cfg| {
            Arc::new(SelectorShared::new(
                cfg.candidates,
                shards,
                self.registry.as_deref(),
                policy_obs.clone(),
            ))
        });

        let shard_vec: Vec<Shard<K, V, S>> = (0..shards)
            .map(|i| {
                let core = match (&policy, &policy_obs) {
                    (PolicySource::Builtin(p), Some(obs)) => {
                        p.build_core_observed(per_shard, Arc::clone(obs))
                    }
                    (PolicySource::Builtin(p), None) => p.build_core(per_shard),
                    (PolicySource::Custom(f), _) => f(per_shard),
                };
                let metrics = self
                    .registry
                    .as_ref()
                    .map(|r| ShardMetrics::new(r, policy_name, i, self.sample_every));
                let selector = match (&self.adaptive, &selector_shared) {
                    (Some(cfg), Some(shared)) => Some(SelectorCell::new(
                        *cfg,
                        per_shard,
                        Arc::clone(shared),
                        policy_obs.clone(),
                    )),
                    _ => None,
                };
                Shard::new(per_shard, core, self.hasher.clone(), metrics, selector)
            })
            .collect();
        CsrCache {
            shards: shard_vec.into_boxed_slice(),
            shard_bits: shards.trailing_zeros(),
            hasher: self.hasher,
            cost_fn: self.cost_fn,
            policy_name,
            registry: self.registry,
            selector: selector_shared,
        }
    }
}

/// A power of two near the machine's parallelism, in `[1, 64]`.
fn default_shards() -> usize {
    let n = std::thread::available_parallelism().map_or(8, std::num::NonZeroUsize::get);
    n.next_power_of_two().min(64)
}

/// Rounds the requested shard count to a power of two no larger than
/// `capacity` (every shard must hold at least one entry).
fn effective_shards(requested: usize, capacity: usize) -> usize {
    let cap_pow2 = if capacity.is_power_of_two() {
        capacity
    } else {
        capacity.next_power_of_two() / 2
    };
    requested.next_power_of_two().min(cap_pow2).max(1)
}

/// A thread-safe, sharded, cost-aware key-value cache.
///
/// Keys are hashed once; the hash picks the shard (high bits) and doubles
/// as the entry's stable *block identity* for the replacement policy (the
/// shard's [`EvictionPolicy`] core sees 64-bit "block addresses", exactly
/// like the simulator policies do). Each shard is an independently locked
/// LRU region of `capacity / shards` entries, evicting via the configured
/// cost-sensitive policy; statistics counters are readable without taking
/// any lock.
///
/// # Examples
///
/// ```
/// use csr_cache::{CsrCache, Policy};
///
/// let cache: CsrCache<u64, String> = CsrCache::builder(1024)
///     .policy(Policy::Dcl)
///     .cost_fn(|_k: &u64, v: &String| 1 + v.len() as u64) // bigger values cost more to refetch
///     .build();
///
/// cache.insert(1, "expensive remote row".to_string());
/// assert_eq!(cache.get(&1).as_deref(), Some("expensive remote row"));
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct CsrCache<K, V, S = RandomState> {
    shards: Box<[Shard<K, V, S>]>,
    shard_bits: u32,
    hasher: S,
    cost_fn: Arc<CostFn<K, V>>,
    policy_name: &'static str,
    registry: Option<Arc<Registry>>,
    selector: Option<Arc<SelectorShared>>,
}

impl<K: Hash + Eq + Clone, V> CsrCache<K, V, RandomState> {
    /// A cache of `capacity` entries with default settings: LRU policy,
    /// uniform cost 1, one shard per hardware thread (rounded to a power
    /// of two).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        CsrCache::builder(capacity).build()
    }

    /// Starts configuring a cache of `capacity` entries.
    #[must_use]
    pub fn builder(capacity: usize) -> CacheBuilder<K, V, RandomState> {
        CacheBuilder::new(capacity)
    }
}

impl<K: Hash + Eq + Clone, V, S: BuildHasher> CsrCache<K, V, S> {
    fn locate(&self, key: &K) -> (usize, BlockAddr) {
        let h = self.hasher.hash_one(key);
        let shard = if self.shard_bits == 0 {
            0
        } else {
            (h >> (64 - self.shard_bits)) as usize
        };
        (shard, BlockAddr(h))
    }

    /// Looks `key` up, promoting it to most recently used on a hit.
    ///
    /// Returns a clone of the cached value — the lock is released before
    /// the caller touches it.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let (shard, id) = self.locate(key);
        self.shards[shard].get(key, id)
    }

    /// Inserts `key -> value`, charging the configured cost function and
    /// evicting per policy if the shard is full. Returns the previous
    /// value when `key` was already resident (an in-place update).
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let (shard, id) = self.locate(&key);
        let cost = (self.cost_fn)(&key, &value);
        self.shards[shard].insert(key, value, cost, id)
    }

    /// Inserts `key -> value` with an explicit, caller-measured miss cost,
    /// bypassing the configured [`CostFn`] — the *dynamic-cost* path.
    ///
    /// Where [`insert`](Self::insert) prices entries through a static
    /// function of key and value, this entry point lets a read-through
    /// caller charge whatever the miss actually cost (the measured fetch
    /// latency, bytes moved over the wire, …), so the cost-sensitive
    /// policies optimize a live signal instead of a model. Returns the
    /// previous value when `key` was already resident.
    ///
    /// The cost is clamped to at least 1: a measurement that truncates to
    /// zero (a sub-microsecond fetch timed in microseconds, say) must not
    /// produce an entry the cost-sensitive policies treat as free to
    /// evict.
    pub fn insert_with_cost(&self, key: K, value: V, cost: u64) -> Option<V> {
        let (shard, id) = self.locate(&key);
        self.shards[shard].insert(key, value, cost.max(1), id)
    }

    /// Read-through lookup with *single-flight* fetch coalescing: returns
    /// the cached value on a hit; on a miss, exactly one caller per key
    /// runs `fetch` (returning the value plus its measured miss cost, in
    /// any additive unit) while concurrent callers for the same key block
    /// and share that one outcome. This closes the get-miss/insert race of
    /// the naive cache-aside idiom — a stampede of N threads on a cold key
    /// performs one fetch, not N.
    ///
    /// The fetch runs without any shard lock held: other keys (even in the
    /// same shard) proceed at full speed while an origin fetch is slow.
    /// Coalesced callers are visible as
    /// [`CacheStats::coalesced_fetches`](crate::CacheStats). The measured
    /// cost is clamped to at least 1 (see
    /// [`insert_with_cost`](Self::insert_with_cost)).
    ///
    /// # Panics
    ///
    /// If `fetch` panics, the panic propagates to the fetching caller;
    /// blocked callers retry (one of them fetching anew).
    pub fn get_or_insert_with<F>(&self, key: K, fetch: F) -> V
    where
        V: Clone,
        F: FnOnce() -> (V, u64),
    {
        let fetched: Result<Option<V>, std::convert::Infallible> =
            self.try_get_or_insert_with(key, || Ok(Some(fetch())));
        match fetched {
            Ok(v) => v.expect("infallible fetch always yields a value"),
            Err(never) => match never {},
        }
    }

    /// Fallible [`get_or_insert_with`](Self::get_or_insert_with): `fetch`
    /// distinguishes the three ways a read-through can resolve.
    ///
    /// * `Ok(Some((value, cost)))` — the origin supplied the value; it is
    ///   inserted with the given measured cost (clamped to ≥ 1) and
    ///   shared with every coalesced waiter.
    /// * `Ok(None)` — the origin authoritatively *has no such key*:
    ///   nothing is inserted, and `Ok(None)` is returned to the caller
    ///   and to every coalesced waiter of the same fetch.
    /// * `Err(e)` — the origin *failed* (unreachable, timed out, …):
    ///   nothing is inserted, the error propagates to the leading caller,
    ///   and — unlike a miss — waiters do **not** share it. Each waiter
    ///   retries with its own `fetch` (one of them leading the next
    ///   attempt), re-examining the cache through an uncounted probe so
    ///   the access's one recorded miss is not double-booked.
    ///
    /// # Errors
    ///
    /// Returns `fetch`'s error when this caller led the fetch and the
    /// origin failed.
    pub fn try_get_or_insert_with<F, E>(&self, key: K, fetch: F) -> Result<Option<V>, E>
    where
        V: Clone,
        F: FnOnce() -> Result<Option<(V, u64)>, E>,
    {
        let (shard, id) = self.locate(&key);
        self.shards[shard].try_get_or_insert_with(key, id, fetch)
    }

    /// Removes `key`, returning its value if it was resident.
    pub fn remove(&self, key: &K) -> Option<V> {
        let (shard, _) = self.locate(key);
        self.shards[shard].remove(key)
    }

    /// Whether `key` is currently resident (no recency side effects).
    pub fn contains(&self, key: &K) -> bool {
        let (shard, _) = self.locate(key);
        self.shards[shard].contains(key)
    }

    /// Drops every entry (counted as removals; statistics are kept).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.clear();
        }
    }

    /// Resident entries across all shards, without locking.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether no entry is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity: `shards * per-shard capacity`. At least the
    /// capacity requested at build time (rounded up to fill every shard
    /// equally).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(Shard::capacity).sum()
    }

    /// Number of independently locked shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Name of the configured replacement policy.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// The metrics registry attached via
    /// [`CacheBuilder::metrics`](crate::CacheBuilder::metrics), if any —
    /// snapshot it and feed `csr_obs::export::{prometheus, json}`.
    #[must_use]
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// A snapshot of the adaptive selector's cache-wide state — shadow
    /// scores, epochs, flips, live-shard split. `None` unless the cache
    /// was built with [`CacheBuilder::adaptive`].
    #[must_use]
    pub fn selector_stats(&self) -> Option<SelectorStats> {
        self.selector.as_ref().map(|s| s.stats())
    }

    /// The live policy name of every shard under adaptive selection, in
    /// shard order. `None` unless the cache was built with
    /// [`CacheBuilder::adaptive`].
    #[must_use]
    pub fn shard_live_policies(&self) -> Option<Vec<&'static str>> {
        self.selector.as_ref()?;
        Some(
            self.shards
                .iter()
                .map(|s| s.live_policy_name().unwrap_or(self.policy_name))
                .collect(),
        )
    }

    /// Clones every resident `(key, value, cost)` triple out of the
    /// cache — the snapshot primitive for persistence layers.
    ///
    /// Entries come out **shard by shard, LRU first within each shard**:
    /// the ordering hint a restart needs, because replaying the triples
    /// in returned order through [`insert_with_cost`](Self::insert_with_cost)
    /// (keys land back in their original shards) reconstructs each
    /// shard's recency list and refills the policy cores in the same
    /// LRU-→-MRU order the adaptive selector uses when hot-swapping a
    /// core — so GD/BCL/DCL eviction ordering survives a dump/reload
    /// round trip.
    ///
    /// **Lock-light, not atomic**: each shard is locked only while its
    /// own entries are cloned out, so concurrent writers stall on one
    /// shard at a time and the combined snapshot is a per-shard- (not
    /// cache-) consistent cut. A persistence layer pairs it with a
    /// write-ahead log precisely to cover the gap.
    #[must_use]
    pub fn export_entries(&self) -> Vec<(K, V, u64)>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        for s in self.shards.iter() {
            out.extend(s.export_entries());
        }
        out
    }

    /// A cache-wide statistics snapshot (lock-free; see
    /// [`CacheStats`] for the consistency caveat under concurrency).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in self.shards.iter() {
            total.merge(&s.stats());
        }
        total
    }

    /// Per-shard statistics snapshots, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(Shard::stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru_cache(capacity: usize, shards: usize) -> CsrCache<u64, u64> {
        CsrCache::builder(capacity).shards(shards).build()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let c = lru_cache(8, 1);
        assert_eq!(c.insert(1, 10), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.insert(1, 11), Some(10), "overwrite returns the old value");
        assert_eq!(c.remove(&1), Some(11));
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
        assert_eq!((s.insertions, s.updates, s.removals), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let c = lru_cache(2, 1);
        c.insert(1, 1);
        c.insert(2, 2);
        c.get(&1); // 2 becomes LRU
        c.insert(3, 3);
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert!(c.contains(&3));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let c = lru_cache(16, 4);
        for k in 0..1000u64 {
            c.insert(k, k);
            assert!(c.len() <= c.capacity());
        }
    }

    #[test]
    fn dcl_shard_reserves_expensive_lru() {
        // Single shard of 2: the shard-level replay of the paper's
        // Section 2.2 scenario (and of csr::Dcl's own unit test).
        let c: CsrCache<u64, u64> = CsrCache::builder(2)
            .shards(1)
            .policy(Policy::Dcl)
            .cost_fn(|k, _v| if *k == 0 { 8 } else { 1 })
            .build();
        c.insert(0, 0); // expensive, becomes LRU
        c.insert(1, 1); // cheap, MRU
        c.insert(2, 2); // full: DCL reserves key 0, evicts cheap key 1
        assert!(c.contains(&0), "expensive LRU entry must be reserved");
        assert!(!c.contains(&1));
        let s = c.stats();
        assert_eq!(s.reservations, 1);
        assert_eq!(s.aggregate_miss_cost, 8 + 1 + 1);
    }

    #[test]
    fn uniform_costs_make_policies_agree_with_lru() {
        for policy in Policy::ALL {
            let c: CsrCache<u64, u64> = CsrCache::builder(4).shards(1).policy(policy).build();
            for k in 0..6u64 {
                c.insert(k, k);
            }
            for k in 0..2u64 {
                assert!(
                    !c.contains(&k),
                    "{policy}: key {k} should have been evicted"
                );
            }
            for k in 2..6u64 {
                assert!(c.contains(&k), "{policy}: key {k} should be resident");
            }
        }
    }

    #[test]
    fn shard_rounding() {
        let c = lru_cache(10, 4);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.capacity(), 12, "10/4 rounds up to 3 per shard");
        // More shards than capacity: clamp so each shard holds >= 1 entry.
        let c = lru_cache(3, 8);
        assert_eq!(c.num_shards(), 2);
        assert_eq!(c.capacity(), 4);
        // Power-of-two round-up of the request.
        let c = lru_cache(64, 3);
        assert_eq!(c.num_shards(), 4);
    }

    #[test]
    fn clear_empties_and_counts_removals() {
        let c = lru_cache(8, 2);
        for k in 0..8u64 {
            c.insert(k, k);
        }
        let resident = c.len() as u64;
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().removals, resident);
        // The cache stays usable after clear.
        c.insert(1, 1);
        assert_eq!(c.get(&1), Some(1));
    }

    #[test]
    fn adaptive_cache_shadow_scores() {
        let cfg = SelectorConfig {
            candidates: (Policy::Lru, Policy::Slru),
            sample_every: 1,
            epoch_len: 32,
            hysteresis: 1,
            min_flip_gap: 0,
            ghost_capacity: 4,
        };
        let c: CsrCache<u64, u64> = CsrCache::builder(8).shards(1).adaptive(cfg).build();
        assert_eq!(c.policy_name(), "ADAPTIVE");
        assert_eq!(
            c.shard_live_policies().as_deref(),
            Some(&["LRU"][..]),
            "shards start on the first candidate"
        );
        // A frequent pair amid a scan: plenty of sampled traffic for both
        // ghosts to score.
        for k in 0..2u64 {
            c.insert(k, k);
        }
        for round in 0..64u64 {
            c.get(&0);
            c.get(&1);
            c.insert(100 + round, round);
        }
        let s = c.selector_stats().expect("adaptive cache exposes stats");
        assert_eq!(s.candidates, ("LRU", "SLRU"));
        assert!(s.epochs >= 1, "epoch_len 32 must have closed an epoch");
        assert!(s.sampled_gets >= 128 && s.sampled_fills >= 64);
        assert!(s.shadow_hits.0 + s.shadow_hits.1 > 0);
        assert_eq!(s.live_shards.0 + s.live_shards.1, 1);
        // The cache itself keeps serving correctly throughout.
        assert_eq!(c.get(&0), Some(0));
    }

    #[test]
    fn non_adaptive_cache_has_no_selector() {
        let c = lru_cache(8, 1);
        assert!(c.selector_stats().is_none());
        assert!(c.shard_live_policies().is_none());
    }

    #[test]
    fn export_entries_walks_lru_to_mru_with_costs() {
        let c: CsrCache<u64, u64> = CsrCache::builder(4)
            .shards(1)
            .policy(Policy::Gd)
            .cost_fn(|k, _| 10 + k)
            .build();
        for k in 0..4u64 {
            c.insert(k, k * 100);
        }
        c.get(&0); // 0 becomes MRU: order is now 1, 2, 3, 0
        let entries = c.export_entries();
        assert_eq!(
            entries,
            vec![(1, 100, 11), (2, 200, 12), (3, 300, 13), (0, 0, 10)],
            "LRU-first order with the fill-time costs"
        );
        // Exporting is side-effect free: stats and residency unchanged.
        assert_eq!(c.len(), 4);
        assert_eq!(c.stats().lookups, 1);
    }

    #[test]
    fn export_reimport_preserves_eviction_ordering() {
        let build = || -> CsrCache<u64, u64> {
            CsrCache::builder(4)
                .shards(1)
                .policy(Policy::Gd)
                .cost_fn(|_, _| 1)
                .build()
        };
        let a = build();
        // Expensive entries (cost 50) first, then cheap ones (cost 1).
        a.insert_with_cost(0, 0, 50);
        a.insert_with_cost(1, 1, 50);
        a.insert_with_cost(2, 2, 1);
        a.insert_with_cost(3, 3, 1);
        let b = build();
        for (k, v, cost) in a.export_entries() {
            b.insert_with_cost(k, v, cost);
        }
        // Pressure: two new cheap fills must evict the two cheap
        // residents, proving the reimported costs (not just the values)
        // drive GreedyDual exactly as they did pre-export.
        b.insert_with_cost(4, 4, 1);
        b.insert_with_cost(5, 5, 1);
        assert!(
            b.contains(&0) && b.contains(&1),
            "expensive entries survive"
        );
        assert!(!b.contains(&2) && !b.contains(&3), "cheap entries evict");
    }

    #[test]
    fn stats_identity_holds_single_threaded() {
        let c = lru_cache(32, 4);
        for k in 0..200u64 {
            if c.get(&(k % 50)).is_none() {
                c.insert(k % 50, k);
            }
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.lookups);
        assert_eq!(s.insertions, s.misses);
    }
}
