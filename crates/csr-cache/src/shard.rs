//! One independently locked shard: a slab of entries threaded on an
//! intrusive doubly linked recency list, an index map, and a pluggable
//! [`EvictionPolicy`] core.
//!
//! A shard is to the key-value cache what one set is to a hardware cache:
//! the policy core sees the shard as a single replacement region whose
//! "ways" are slab slots and whose "block addresses" are the stable 64-bit
//! key hashes. As with the tag aliasing of Section 4.3, a hash collision
//! can at worst make a policy depreciate a reservation it should not have —
//! never affect correctness of the key-value mapping itself, which always
//! compares full keys.

use cache_sim::{BlockAddr, Cost, SetView, Way, WayView};
use csr::EvictionPolicy;
use csr_obs::{Histogram, Registry};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::selector::SelectorCell;
use crate::stats::CacheStats;

/// Sentinel slot index for list ends.
const NIL: u32 = u32::MAX;

/// Per-shard counters: mutated under the shard lock, loaded without it.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    updates: AtomicU64,
    evictions: AtomicU64,
    reservations: AtomicU64,
    removals: AtomicU64,
    aggregate_miss_cost: AtomicU64,
    coalesced_fetches: AtomicU64,
    resident: AtomicU64,
}

impl ShardCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            reservations: self.reservations.load(Ordering::Relaxed),
            removals: self.removals.load(Ordering::Relaxed),
            aggregate_miss_cost: self.aggregate_miss_cost.load(Ordering::Relaxed),
            coalesced_fetches: self.coalesced_fetches.load(Ordering::Relaxed),
        }
    }
}

/// Per-shard wall-clock latency instrumentation, registered when the cache
/// is built with [`CacheBuilder::metrics`](crate::CacheBuilder::metrics).
///
/// Latencies are **sampled**: one in `sample_every` operations (counted per
/// shard, per op kind) is timed with [`Instant`] and recorded in
/// nanoseconds. Sampling keeps the disabled-in-practice cost of two clock
/// reads off the hot path, at the price of a skew documented on
/// [`CacheBuilder::latency_sample_every`](crate::CacheBuilder::latency_sample_every).
pub(crate) struct ShardMetrics {
    get_ns: OpTimer,
    insert_ns: OpTimer,
}

impl ShardMetrics {
    /// Prometheus family name of the op-latency histograms.
    pub(crate) const LATENCY_FAMILY: &'static str = "csr_cache_op_latency_ns";

    pub(crate) fn new(registry: &Registry, policy: &str, shard: usize, sample_every: u64) -> Self {
        let shard = shard.to_string();
        let hist = |op: &str| {
            registry.histogram(
                Self::LATENCY_FAMILY,
                "Sampled cache operation latency in nanoseconds",
                &[("policy", policy), ("op", op), ("shard", &shard)],
            )
        };
        ShardMetrics {
            get_ns: OpTimer::new(hist("get"), sample_every),
            insert_ns: OpTimer::new(hist("insert"), sample_every),
        }
    }
}

/// A sampled histogram of one operation's latency.
struct OpTimer {
    hist: Arc<Histogram>,
    sample_every: u64,
    ticker: AtomicU64,
}

impl OpTimer {
    fn new(hist: Arc<Histogram>, sample_every: u64) -> Self {
        assert!(sample_every > 0, "sample interval must be positive");
        OpTimer {
            hist,
            sample_every,
            ticker: AtomicU64::new(0),
        }
    }

    /// Starts a timer for one in every `sample_every` calls.
    fn maybe_start(&self) -> Option<Instant> {
        if self.ticker.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.sample_every) {
            Some(Instant::now())
        } else {
            None
        }
    }

    fn finish(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

/// The outcome of one in-flight read-through fetch, shared between the
/// fetching thread (the *leader*) and any threads that arrived while the
/// fetch was running (the *waiters*).
enum FlightState<V> {
    /// The leader is still fetching.
    Pending,
    /// The fetch finished: the origin's value (`None` when the origin has
    /// no entry for the key — nothing was inserted).
    Done(Option<V>),
    /// The leader's fetch returned an error (the origin failed, not "the
    /// origin has no entry"): nothing was inserted and waiters must retry
    /// with their own fetch — an error is never shared as a miss.
    Errored,
    /// The leader panicked or abandoned the fetch; waiters must retry.
    Failed,
}

/// One in-flight fetch: waiters block on the condvar until the leader
/// resolves the state.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    fn resolve(&self, outcome: FlightState<V>) {
        *self.state.lock().expect("flight lock poisoned") = outcome;
        self.done.notify_all();
    }
}

impl<V: Clone> Flight<V> {
    /// Blocks until the leader resolves the flight. `Some(outcome)` is the
    /// leader's result — `Some(None)` being the authoritative "origin has
    /// no entry". `None` means the leader errored or panicked and the
    /// caller must retry from the top (possibly leading the next fetch).
    fn wait(&self) -> Option<Option<V>> {
        let mut state = self.state.lock().expect("flight lock poisoned");
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self.done.wait(state).expect("flight lock poisoned");
                }
                FlightState::Done(v) => return Some(v.clone()),
                FlightState::Errored | FlightState::Failed => return None,
            }
        }
    }
}

/// Removes the leader's flight entry and fails its waiters if the fetch
/// closure panics (the panic then propagates out of the leader unchanged;
/// waiters retry and elect a new leader).
struct FlightGuard<'a, K: Hash + Eq, V> {
    inflight: &'a Mutex<HashMap<K, Arc<Flight<V>>>>,
    key: Option<K>,
    flight: &'a Flight<V>,
}

impl<K: Hash + Eq, V> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.inflight
                .lock()
                .expect("inflight lock poisoned")
                .remove(&key);
            self.flight.resolve(FlightState::Failed);
        }
    }
}

/// One slab entry: the key-value pair plus its recency-list links.
struct Slot<K, V> {
    key: K,
    value: V,
    /// Miss cost as computed by the cache's cost function at fill time.
    cost: u64,
    /// Stable policy-visible identity: the 64-bit hash of the key.
    id: BlockAddr,
    prev: u32,
    next: u32,
}

struct ShardState<K, V, S> {
    /// key -> slab slot.
    map: HashMap<K, u32, S>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<u32>,
    /// MRU end of the recency list.
    head: u32,
    /// LRU end of the recency list.
    tail: u32,
    policy: Box<dyn EvictionPolicy + Send>,
}

impl<K, V, S> ShardState<K, V, S> {
    fn slot(&self, i: u32) -> &Slot<K, V> {
        self.slots[i as usize]
            .as_ref()
            .expect("linked slot must be occupied")
    }

    fn slot_mut(&mut self, i: u32) -> &mut Slot<K, V> {
        self.slots[i as usize]
            .as_mut()
            .expect("linked slot must be occupied")
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = self.slot(i);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = self.slot_mut(i);
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slot_mut(old_head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn move_to_front(&mut self, i: u32) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// `(id, cost)` of the LRU entry, if any — what the policy cores call
    /// the LRU block.
    fn lru_of(&self) -> Option<(BlockAddr, Cost)> {
        if self.tail == NIL {
            None
        } else {
            let s = self.slot(self.tail);
            Some((s.id, Cost(s.cost)))
        }
    }

    /// Materializes the recency stack MRU → LRU for victim selection (the
    /// only O(capacity) step; runs once per eviction).
    fn view_entries(&self) -> Vec<WayView> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let s = self.slot(cur);
            out.push(WayView {
                way: Way(cur as usize),
                block: s.id,
                cost: Cost(s.cost),
                dirty: false,
            });
            cur = s.next;
        }
        out
    }
}

pub(crate) struct Shard<K, V, S> {
    state: Mutex<ShardState<K, V, S>>,
    /// In-flight read-through fetches, keyed by the key being fetched.
    /// Lock order: `inflight` may be held while taking `state` (leader
    /// completion), never the other way around.
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
    counters: ShardCounters,
    capacity: usize,
    metrics: Option<ShardMetrics>,
    /// Adaptive policy selector, present only on caches built with
    /// [`CacheBuilder::adaptive`](crate::CacheBuilder::adaptive). Its inner
    /// lock is never taken while `state` is held (selector hooks run after
    /// the state guard is dropped); a flip re-acquires `state` afterwards.
    selector: Option<SelectorCell>,
}

impl<K: Hash + Eq + Clone, V, S: BuildHasher> Shard<K, V, S> {
    pub(crate) fn new(
        capacity: usize,
        policy: Box<dyn EvictionPolicy + Send>,
        hasher: S,
        metrics: Option<ShardMetrics>,
        selector: Option<SelectorCell>,
    ) -> Self {
        assert!(capacity > 0, "shard capacity must be positive");
        assert!(
            capacity < NIL as usize,
            "shard capacity must fit in a u32 slot index"
        );
        Shard {
            state: Mutex::new(ShardState {
                map: HashMap::with_capacity_and_hasher(capacity, hasher),
                slots: Vec::with_capacity(capacity),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                policy,
            }),
            inflight: Mutex::new(HashMap::new()),
            counters: ShardCounters::default(),
            capacity,
            metrics,
            selector,
        }
    }

    /// The shard's current live policy name under adaptive selection, if
    /// the selector is enabled.
    pub(crate) fn live_policy_name(&self) -> Option<&'static str> {
        self.selector.as_ref().map(SelectorCell::live_name)
    }

    /// Hot-swaps the live policy core: the incoming core is warmed by
    /// replaying the resident entries as fills, LRU first, so its view of
    /// the recency order matches the shard's — then it simply takes over.
    fn swap_policy(&self, mut core: Box<dyn EvictionPolicy + Send>) {
        let mut st = self.lock();
        let mut cur = st.tail;
        while cur != NIL {
            let (id, way, cost, prev) = {
                let s = st.slot(cur);
                (s.id, Way(cur as usize), Cost(s.cost), s.prev)
            };
            core.on_fill(id, way, cost);
            cur = prev;
        }
        st.policy = core;
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entries, readable without the lock.
    pub(crate) fn len(&self) -> usize {
        self.counters.resident.load(Ordering::Relaxed) as usize
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardState<K, V, S>> {
        // A panic while holding the lock leaves the shard in an undefined
        // intermediate state; propagating the poison (panicking here) is
        // the correct containment.
        self.state.lock().expect("shard lock poisoned")
    }

    pub(crate) fn get(&self, key: &K, id: BlockAddr) -> Option<V>
    where
        V: Clone,
    {
        let timer = self.metrics.as_ref().map(|m| &m.get_ns);
        let started = timer.and_then(OpTimer::maybe_start);
        ShardCounters::bump(&self.counters.lookups);
        let mut st = self.lock();
        let result = match st.map.get(key).copied() {
            Some(i) => {
                let is_lru = st.tail == i;
                let (sid, way, cost) = {
                    let s = st.slot(i);
                    (s.id, Way(i as usize), Cost(s.cost))
                };
                st.policy.on_hit(sid, way, cost, is_lru);
                st.move_to_front(i);
                let value = st.slot(i).value.clone();
                ShardCounters::bump(&self.counters.hits);
                Some(value)
            }
            None => {
                let lru = st.lru_of();
                st.policy.on_miss(id, lru);
                ShardCounters::bump(&self.counters.misses);
                None
            }
        };
        drop(st);
        if let Some(cell) = &self.selector {
            if cell.sampled(id) {
                if let Some(flip) = cell.on_get(id) {
                    self.swap_policy(flip.core);
                }
            }
        }
        if let Some(t) = timer {
            t.finish(started);
        }
        result
    }

    /// Inserts `key -> value` with miss cost `cost`, evicting per policy if
    /// the shard is full. Returns the previous value when overwriting.
    pub(crate) fn insert(&self, key: K, value: V, cost: u64, id: BlockAddr) -> Option<V> {
        let timer = self.metrics.as_ref().map(|m| &m.insert_ns);
        let started = timer.and_then(OpTimer::maybe_start);
        let result = self.insert_locked(key, value, cost, id);
        if let Some(cell) = &self.selector {
            if cell.sampled(id) {
                cell.on_fill(id, cost);
            }
        }
        if let Some(t) = timer {
            t.finish(started);
        }
        result
    }

    fn insert_locked(&self, key: K, value: V, cost: u64, id: BlockAddr) -> Option<V> {
        let mut st = self.lock();
        if let Some(i) = st.map.get(&key).copied() {
            // Overwrite in place: treat as an access (promote + notify),
            // then refresh the stored cost for cost-dependent policies.
            let is_lru = st.tail == i;
            let (sid, old_cost) = {
                let s = st.slot(i);
                (s.id, Cost(s.cost))
            };
            st.policy.on_hit(sid, Way(i as usize), old_cost, is_lru);
            st.move_to_front(i);
            st.policy.on_fill(sid, Way(i as usize), Cost(cost));
            let s = st.slot_mut(i);
            s.cost = cost;
            let old = std::mem::replace(&mut s.value, value);
            ShardCounters::bump(&self.counters.updates);
            return Some(old);
        }

        // The insert of an absent key is itself a missing access. In the
        // get-then-insert flow this is the second on_miss for the same
        // miss — harmless by the EvictionPolicy contract (the first call
        // consumed any matching ETD entry).
        let lru = st.lru_of();
        st.policy.on_miss(id, lru);

        if st.map.len() == self.capacity {
            let entries = st.view_entries();
            let victim = st.policy.victim(&SetView::new(&entries));
            let vi = victim.0 as u32;
            if st.tail != vi {
                ShardCounters::bump(&self.counters.reservations);
            }
            st.unlink(vi);
            let evicted = st.slots[vi as usize]
                .take()
                .expect("victim slot must be occupied");
            st.map.remove(&evicted.key);
            st.free.push(vi);
            ShardCounters::bump(&self.counters.evictions);
            self.counters.resident.fetch_sub(1, Ordering::Relaxed);
        }

        let i = match st.free.pop() {
            Some(i) => i,
            None => {
                st.slots.push(None);
                (st.slots.len() - 1) as u32
            }
        };
        st.slots[i as usize] = Some(Slot {
            key: key.clone(),
            value,
            cost,
            id,
            prev: NIL,
            next: NIL,
        });
        st.map.insert(key, i);
        st.push_front(i);
        st.policy.on_fill(id, Way(i as usize), Cost(cost));
        // Counter mutations stay inside the lock region: the lock
        // serializes them per shard, so `resident` (read lock-free by
        // `len`) can transiently undercount but never exceed capacity.
        ShardCounters::bump(&self.counters.insertions);
        self.counters
            .aggregate_miss_cost
            .fetch_add(cost, Ordering::Relaxed);
        self.counters.resident.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// A lookup that touches no counters and no policy state. Only for
    /// [`Self::try_get_or_insert_with`]'s leader-candidate recheck and its
    /// retry-after-failed-leader path: the caller has already paid one
    /// counted miss for this access, and the probe exists solely to spot
    /// a fill that raced in (or to re-examine the cache after the leader's
    /// fetch errored) — counting it again would double-book the miss.
    fn probe(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let st = self.lock();
        st.map.get(key).copied().map(|i| st.slot(i).value.clone())
    }

    /// Single-flight read-through lookup. On a miss, exactly one caller
    /// (the *leader*) runs `fetch`; callers arriving for the same key
    /// while the fetch is in flight block and share the leader's outcome
    /// instead of issuing duplicate fetches. `Ok(Some((value, cost)))`
    /// from `fetch` inserts the value with the given (measured) miss cost,
    /// clamped to at least 1 so no dynamically priced entry is ever free
    /// to evict; `Ok(None)` means the origin authoritatively has no such
    /// key and nothing is inserted.
    ///
    /// `Err` from `fetch` means the *origin failed* — distinct from "the
    /// origin has no entry". The error propagates to the leader, nothing
    /// is inserted, and waiters retry with their own fetch (one becoming
    /// the next leader) instead of sharing the failure as a miss. A
    /// waiter's retry re-examines the cache through the stat-free probe,
    /// not a counted `get`: the access already paid its one counted miss
    /// on the way in, and a leader failure must not double-book it.
    ///
    /// If `fetch` panics, the panic propagates out of the leader and every
    /// waiter retries exactly as for an error.
    pub(crate) fn try_get_or_insert_with<F, E>(
        &self,
        key: K,
        id: BlockAddr,
        fetch: F,
    ) -> Result<Option<V>, E>
    where
        V: Clone,
        F: FnOnce() -> Result<Option<(V, u64)>, E>,
    {
        enum Role<V> {
            Leader(Arc<Flight<V>>),
            Waiter(Arc<Flight<V>>),
        }
        // Consumed by at most one leadership run; a caller that keeps
        // losing the leader election keeps waiting and never needs it.
        let mut fetch = Some(fetch);
        let mut first_pass = true;
        loop {
            let cached = if first_pass {
                self.get(&key, id)
            } else {
                // Retry after a failed leader: off the books (see above).
                self.probe(&key)
            };
            first_pass = false;
            if let Some(v) = cached {
                return Ok(Some(v));
            }
            let role = {
                let mut inflight = self.inflight.lock().expect("inflight lock poisoned");
                if let Some(f) = inflight.get(&key) {
                    Role::Waiter(Arc::clone(f))
                } else {
                    // About to lead — but the previous leader may have
                    // completed (insert, then flight removal, both under
                    // this lock) between our miss above and taking the
                    // lock. Recheck while holding it: a miss here is
                    // authoritative. The probe stays off the books — the
                    // counted `get` above already recorded this access.
                    if let Some(v) = self.probe(&key) {
                        return Ok(Some(v));
                    }
                    let f = Arc::new(Flight::new());
                    inflight.insert(key.clone(), Arc::clone(&f));
                    Role::Leader(f)
                }
            };
            match role {
                Role::Waiter(f) => match f.wait() {
                    Some(outcome) => {
                        ShardCounters::bump(&self.counters.coalesced_fetches);
                        return Ok(outcome);
                    }
                    // The leader errored or panicked; retry (possibly
                    // becoming leader with our own, still-unused fetch).
                    None => continue,
                },
                Role::Leader(f) => {
                    let mut guard = FlightGuard {
                        inflight: &self.inflight,
                        key: Some(key.clone()),
                        flight: &f,
                    };
                    let run = fetch.take().expect("fetch unused until leadership");
                    let fetched = run(); // on panic: guard fails the flight
                    match fetched {
                        Ok(resolved) => {
                            let mut inflight =
                                self.inflight.lock().expect("inflight lock poisoned");
                            let outcome = resolved.map(|(v, cost)| {
                                self.insert(key.clone(), v.clone(), cost.max(1), id);
                                v
                            });
                            let key = guard.key.take().expect("guard still armed");
                            inflight.remove(&key);
                            drop(inflight);
                            f.resolve(FlightState::Done(outcome.clone()));
                            return Ok(outcome);
                        }
                        Err(e) => {
                            let mut inflight =
                                self.inflight.lock().expect("inflight lock poisoned");
                            let key = guard.key.take().expect("guard still armed");
                            inflight.remove(&key);
                            drop(inflight);
                            f.resolve(FlightState::Errored);
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn remove(&self, key: &K) -> Option<V> {
        let mut st = self.lock();
        let i = st.map.remove(key)?;
        st.unlink(i);
        let slot = self.take_slot(&mut st, i);
        st.policy.on_remove(slot.id);
        ShardCounters::bump(&self.counters.removals);
        self.counters.resident.fetch_sub(1, Ordering::Relaxed);
        drop(st);
        if let Some(cell) = &self.selector {
            if cell.sampled(slot.id) {
                cell.on_remove(slot.id);
            }
        }
        Some(slot.value)
    }

    pub(crate) fn contains(&self, key: &K) -> bool {
        self.lock().map.contains_key(key)
    }

    pub(crate) fn clear(&self) {
        let mut st = self.lock();
        let mut cur = st.head;
        let mut dropped = 0u64;
        let mut sampled_ids = Vec::new();
        while cur != NIL {
            let slot = self.take_slot(&mut st, cur);
            st.policy.on_remove(slot.id);
            if let Some(cell) = &self.selector {
                if cell.sampled(slot.id) {
                    sampled_ids.push(slot.id);
                }
            }
            cur = slot.next;
            dropped += 1;
        }
        st.map.clear();
        st.free.clear();
        st.slots.clear();
        st.head = NIL;
        st.tail = NIL;
        self.counters.removals.fetch_add(dropped, Ordering::Relaxed);
        self.counters.resident.fetch_sub(dropped, Ordering::Relaxed);
        drop(st);
        if let Some(cell) = &self.selector {
            for id in sampled_ids {
                cell.on_remove(id);
            }
        }
    }

    fn take_slot(&self, st: &mut ShardState<K, V, S>, i: u32) -> Slot<K, V> {
        let slot = st.slots[i as usize].take().expect("slot must be occupied");
        st.free.push(i);
        slot
    }

    /// Clones every resident `(key, value, cost)` triple out of the shard
    /// in LRU → MRU order (the recency-replay order: re-inserting the
    /// triples in this order through `insert` reconstructs both the
    /// recency list and, for cost-sensitive policies warmed by fills, the
    /// eviction ordering). Touches no counters and no policy state; holds
    /// the shard lock only for the duration of the walk.
    pub(crate) fn export_entries(&self) -> Vec<(K, V, u64)>
    where
        V: Clone,
    {
        let st = self.lock();
        let mut out = Vec::with_capacity(st.map.len());
        let mut cur = st.tail;
        while cur != NIL {
            let s = st.slot(cur);
            out.push((s.key.clone(), s.value.clone(), s.cost));
            cur = s.prev;
        }
        out
    }
}
