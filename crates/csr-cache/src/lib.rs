//! # csr-cache — a concurrent, cost-aware key-value cache
//!
//! A thread-safe, sharded key-value cache whose evictions are driven by
//! the cost-sensitive replacement policies of *Cost-Sensitive Cache
//! Replacement Algorithms* (Jeong & Dubois, HPCA 2003) — the same
//! single-region policy cores that power the `csr` set-associative
//! simulator, lifted to a software cache where each shard is one large
//! replacement region.
//!
//! Unlike a classic LRU map, a [`CsrCache`] knows that misses are not all
//! equal: a user-supplied [`CostFn`] prices every entry (refetch latency,
//! backend load, dollars), and the [`Policy`] chosen at build time (BCL,
//! DCL, ACL, GreedyDual, or plain LRU) *reserves* expensive entries past
//! their normal LRU eviction point whenever doing so is expected to lower
//! the **aggregate miss cost**.
//!
//! * Thread safety: keys are spread over independently locked shards by
//!   hash; statistics counters are readable without any lock.
//! * Pluggable policy: every built-in [`Policy`] variant, or any custom
//!   [`csr::EvictionPolicy`] via
//!   [`CacheBuilder::policy_with`].
//!
//! # Quick start
//!
//! ```
//! use csr_cache::{CsrCache, Policy};
//!
//! // 10_000 entries, sharded across cores, DCL replacement, and a cost
//! // function that prices entries by how expensive they are to refetch.
//! let cache: CsrCache<String, Vec<u8>> = CsrCache::builder(10_000)
//!     .policy(Policy::Dcl)
//!     .cost_fn(|_key: &String, bytes: &Vec<u8>| 100 + bytes.len() as u64)
//!     .build();
//!
//! cache.insert("user:42".into(), vec![1, 2, 3]);
//! assert_eq!(cache.get(&"user:42".into()), Some(vec![1, 2, 3]));
//!
//! let stats = cache.stats();
//! assert_eq!(stats.hits, 1);
//! println!("hit rate {:.1}% — total refetch cost {}",
//!          100.0 * stats.hit_rate(), stats.aggregate_miss_cost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod policy;
mod selector;
mod shard;
mod stats;

pub use cache::{CacheBuilder, CostFn, CsrCache};
pub use policy::{Policy, SharedObserver};
pub use selector::{SelectorConfig, SelectorStats};
pub use stats::CacheStats;
