//! # csr-cache
//!
//! A thread-safe, sharded, cost-aware key-value cache built on the
//! cost-sensitive replacement policies of Jeong & Dubois (HPCA 2003).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
