//! Online adaptive per-shard policy selection by shadow scoring.
//!
//! The paper's ACL (Section 2.5) already demonstrates that *adapting* the
//! replacement policy online beats committing to one — but only between
//! two hardwired variants (reservations on/off) via a 2-bit automaton.
//! This module generalizes the idea to any pair of [`Policy`] candidates:
//!
//! * Each shard runs two **ghost caches** — key-only miniatures of the
//!   shard, one per candidate, each driven by a real policy core — over a
//!   deterministic 1-in-N *key* sample of the shard's traffic. Sampling by
//!   key hash (not by operation) keeps a sampled key's gets and fills
//!   paired, so each ghost sees a coherent miniature of the workload; the
//!   ghosts are sized down by the same factor (the miniature-cache
//!   principle), bounding the overhead to O(ways / N) memory and O(1)
//!   amortized time per sampled op.
//! * Candidates are scored by **modeled cost savings** — the sum of the
//!   stored entry costs of their shadow hits, the paper's aggregate-miss-
//!   cost metric from the saved side — over fixed-length epochs of sampled
//!   lookups.
//! * At each epoch close the shard **hot-flips** its live core to the
//!   winner, with hysteresis: the challenger must win
//!   [`SelectorConfig::hysteresis`] consecutive epochs, and flips are
//!   rate-capped by [`SelectorConfig::min_flip_gap`]. The incoming core is
//!   warmed by replaying the shard's resident entries (LRU → MRU) as
//!   fills, then takes over seamlessly.
//!
//! Every flip emits the `policy_flip` observer event and bumps the
//! `csr_cache_selector_*` metrics family.

use cache_sim::{BlockAddr, Cost, SetView, Way, WayView};
use csr::EvictionPolicy;
use csr_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::policy::{Policy, SharedObserver};

/// Configures the per-shard adaptive policy selector
/// ([`CacheBuilder::adaptive`](crate::CacheBuilder::adaptive)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectorConfig {
    /// The two candidate policies. The first is the initial live policy of
    /// every shard.
    pub candidates: (Policy, Policy),
    /// Shadow 1 in `sample_every` keys (by key hash). 1 shadows every key.
    pub sample_every: u64,
    /// Sampled lookups per scoring epoch (per shard).
    pub epoch_len: u64,
    /// Consecutive epochs the challenger must win before a flip.
    pub hysteresis: u32,
    /// Minimum epochs between two flips of the same shard (flip-rate cap).
    pub min_flip_gap: u64,
    /// Ghost-cache capacity per shard; 0 sizes it automatically to
    /// `max(8, ways / sample_every)` (the miniature-cache scale).
    pub ghost_capacity: usize,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            candidates: (Policy::Dcl, Policy::S3Fifo),
            sample_every: 8,
            epoch_len: 256,
            hysteresis: 2,
            min_flip_gap: 4,
            ghost_capacity: 0,
        }
    }
}

impl SelectorConfig {
    /// Whether the key with hash identity `id` is in the shadow sample.
    pub(crate) fn sampled(&self, id: BlockAddr) -> bool {
        self.sample_every <= 1 || id.0.is_multiple_of(self.sample_every)
    }

    fn ghost_capacity_for(&self, ways: usize) -> usize {
        if self.ghost_capacity > 0 {
            self.ghost_capacity
        } else {
            (ways as u64 / self.sample_every.max(1)).max(8) as usize
        }
    }
}

/// A snapshot of the adaptive selector's cache-wide state
/// ([`CsrCache::selector_stats`](crate::CsrCache::selector_stats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectorStats {
    /// The candidate policy names `(a, b)`.
    pub candidates: (&'static str, &'static str),
    /// Completed policy flips across all shards.
    pub flips: u64,
    /// Completed scoring epochs across all shards.
    pub epochs: u64,
    /// Sampled lookups fed to the ghost caches.
    pub sampled_gets: u64,
    /// Sampled fills fed to the ghost caches.
    pub sampled_fills: u64,
    /// Shadow hits per candidate.
    pub shadow_hits: (u64, u64),
    /// Modeled cost savings (sum of shadow-hit entry costs) per candidate.
    pub shadow_savings: (u64, u64),
    /// Shards currently running each candidate.
    pub live_shards: (u64, u64),
}

/// Cache-wide selector state shared by every shard: lifetime counters, the
/// optional metrics feed, and the optional decision observer that receives
/// `policy_flip` events.
pub(crate) struct SelectorShared {
    names: (&'static str, &'static str),
    flips: AtomicU64,
    epochs: AtomicU64,
    sampled_gets: AtomicU64,
    sampled_fills: AtomicU64,
    shadow_hits: [AtomicU64; 2],
    shadow_savings: [AtomicU64; 2],
    live_shards: [AtomicU64; 2],
    metrics: Option<SelectorMetrics>,
    obs: Option<SharedObserver>,
}

/// The `csr_cache_selector_*` metric handles.
struct SelectorMetrics {
    flips: Arc<Counter>,
    epochs: Arc<Counter>,
    sampled: Arc<Counter>,
    savings: [Arc<Counter>; 2],
}

impl SelectorShared {
    /// Prometheus family names.
    pub(crate) const FLIPS_FAMILY: &'static str = "csr_cache_selector_flips_total";
    pub(crate) const EPOCHS_FAMILY: &'static str = "csr_cache_selector_epochs_total";
    pub(crate) const SAMPLED_FAMILY: &'static str = "csr_cache_selector_sampled_ops_total";
    pub(crate) const SAVINGS_FAMILY: &'static str = "csr_cache_selector_shadow_savings_total";

    pub(crate) fn new(
        candidates: (Policy, Policy),
        shards: usize,
        registry: Option<&Registry>,
        obs: Option<SharedObserver>,
    ) -> Self {
        let names = (candidates.0.name(), candidates.1.name());
        let metrics = registry.map(|r| SelectorMetrics {
            flips: r.counter(
                Self::FLIPS_FAMILY,
                "Completed adaptive policy flips",
                &[("a", names.0), ("b", names.1)],
            ),
            epochs: r.counter(
                Self::EPOCHS_FAMILY,
                "Completed shadow-scoring epochs",
                &[("a", names.0), ("b", names.1)],
            ),
            sampled: r.counter(
                Self::SAMPLED_FAMILY,
                "Operations fed to the shadow ghost caches",
                &[("a", names.0), ("b", names.1)],
            ),
            savings: [
                r.counter(
                    Self::SAVINGS_FAMILY,
                    "Modeled cost savings accumulated by each shadow candidate",
                    &[("policy", names.0)],
                ),
                r.counter(
                    Self::SAVINGS_FAMILY,
                    "Modeled cost savings accumulated by each shadow candidate",
                    &[("policy", names.1)],
                ),
            ],
        });
        SelectorShared {
            names,
            flips: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            sampled_gets: AtomicU64::new(0),
            sampled_fills: AtomicU64::new(0),
            shadow_hits: [AtomicU64::new(0), AtomicU64::new(0)],
            shadow_savings: [AtomicU64::new(0), AtomicU64::new(0)],
            live_shards: [AtomicU64::new(shards as u64), AtomicU64::new(0)],
            metrics,
            obs,
        }
    }

    pub(crate) fn stats(&self) -> SelectorStats {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        SelectorStats {
            candidates: self.names,
            flips: ld(&self.flips),
            epochs: ld(&self.epochs),
            sampled_gets: ld(&self.sampled_gets),
            sampled_fills: ld(&self.sampled_fills),
            shadow_hits: (ld(&self.shadow_hits[0]), ld(&self.shadow_hits[1])),
            shadow_savings: (ld(&self.shadow_savings[0]), ld(&self.shadow_savings[1])),
            live_shards: (ld(&self.live_shards[0]), ld(&self.live_shards[1])),
        }
    }

    fn record_shadow_hit(&self, cand: usize, cost: u64) {
        self.shadow_hits[cand].fetch_add(1, Ordering::Relaxed);
        self.shadow_savings[cand].fetch_add(cost, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.savings[cand].add(cost);
        }
    }

    fn record_flip(&self, from: usize, to: usize) {
        self.flips.fetch_add(1, Ordering::Relaxed);
        self.live_shards[from].fetch_sub(1, Ordering::Relaxed);
        self.live_shards[to].fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.flips.inc();
        }
        if let Some(obs) = &self.obs {
            let names = [self.names.0, self.names.1];
            obs.on_policy_flip(names[from], names[to]);
        }
    }
}

/// One slot of a ghost cache: key identity, modeled cost, recency links.
struct GhostSlot {
    id: BlockAddr,
    cost: u64,
    prev: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

/// A key-only miniature of a shard driven by a real policy core: the same
/// slab + intrusive recency list as the shard itself, minus values, locks
/// and flights. Deterministic given the id sequence.
struct Ghost {
    core: Box<dyn EvictionPolicy + Send>,
    map: HashMap<u64, u32>,
    slots: Vec<Option<GhostSlot>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    capacity: usize,
}

impl Ghost {
    fn new(policy: Policy, capacity: usize) -> Self {
        Ghost {
            core: policy.build_core(capacity),
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    fn slot(&self, i: u32) -> &GhostSlot {
        self.slots[i as usize]
            .as_ref()
            .expect("linked ghost slot must be occupied")
    }

    fn slot_mut(&mut self, i: u32) -> &mut GhostSlot {
        self.slots[i as usize]
            .as_mut()
            .expect("linked ghost slot must be occupied")
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = self.slot(i);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = self.slot_mut(i);
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slot_mut(old_head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn lru_of(&self) -> Option<(BlockAddr, Cost)> {
        if self.tail == NIL {
            None
        } else {
            let s = self.slot(self.tail);
            Some((s.id, Cost(s.cost)))
        }
    }

    fn view_entries(&self) -> Vec<WayView> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let s = self.slot(cur);
            out.push(WayView {
                way: Way(cur as usize),
                block: s.id,
                cost: Cost(s.cost),
                dirty: false,
            });
            cur = s.next;
        }
        out
    }

    /// A shadow lookup: on a hit, promotes and returns the stored cost (the
    /// modeled saving); on a miss, notifies the core and returns `None`.
    fn touch(&mut self, id: BlockAddr) -> Option<u64> {
        match self.map.get(&id.0).copied() {
            Some(i) => {
                let is_lru = self.tail == i;
                let cost = self.slot(i).cost;
                self.core.on_hit(id, Way(i as usize), Cost(cost), is_lru);
                self.unlink(i);
                self.push_front(i);
                Some(cost)
            }
            None => {
                let lru = self.lru_of();
                self.core.on_miss(id, lru);
                None
            }
        }
    }

    /// A shadow fill: inserts (evicting per the candidate core if full) or
    /// refreshes the stored cost of a resident key.
    fn fill(&mut self, id: BlockAddr, cost: u64) {
        if let Some(i) = self.map.get(&id.0).copied() {
            let is_lru = self.tail == i;
            let old = self.slot(i).cost;
            self.core.on_hit(id, Way(i as usize), Cost(old), is_lru);
            self.unlink(i);
            self.push_front(i);
            self.core.on_fill(id, Way(i as usize), Cost(cost));
            self.slot_mut(i).cost = cost;
            return;
        }
        let lru = self.lru_of();
        self.core.on_miss(id, lru);
        if self.map.len() == self.capacity {
            let entries = self.view_entries();
            let victim = self.core.victim(&SetView::new(&entries));
            let vi = victim.0 as u32;
            self.unlink(vi);
            let evicted = self.slots[vi as usize]
                .take()
                .expect("ghost victim slot must be occupied");
            self.map.remove(&evicted.id.0);
            self.free.push(vi);
        }
        let i = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[i as usize] = Some(GhostSlot {
            id,
            cost,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(id.0, i);
        self.push_front(i);
        self.core.on_fill(id, Way(i as usize), Cost(cost));
    }

    fn remove(&mut self, id: BlockAddr) {
        if let Some(i) = self.map.remove(&id.0) {
            self.unlink(i);
            self.slots[i as usize] = None;
            self.free.push(i);
            self.core.on_remove(id);
        }
    }
}

/// The outcome of a sampled operation: when a flip fired, the replacement
/// core (already observed, if the cache has an observer) the shard must
/// install via its warm `swap_policy`.
pub(crate) struct FlipDecision {
    pub(crate) core: Box<dyn EvictionPolicy + Send>,
}

/// Per-shard selector state: two ghost caches, the current epoch's scores,
/// and the hysteresis bookkeeping. Lives behind its own mutex in the shard
/// (never taken while the shard state lock is held).
pub(crate) struct ShardSelector {
    cfg: SelectorConfig,
    ways: usize,
    ghosts: [Ghost; 2],
    scores: [u64; 2],
    sampled_in_epoch: u64,
    /// Index (0/1) of the candidate currently live in the shard.
    live: usize,
    /// Consecutive epochs won per candidate.
    wins: [u32; 2],
    epochs_since_flip: u64,
    shared: Arc<SelectorShared>,
    obs: Option<SharedObserver>,
}

impl ShardSelector {
    pub(crate) fn new(
        cfg: SelectorConfig,
        ways: usize,
        shared: Arc<SelectorShared>,
        obs: Option<SharedObserver>,
    ) -> Self {
        let ghost_cap = cfg.ghost_capacity_for(ways);
        ShardSelector {
            ghosts: [
                Ghost::new(cfg.candidates.0, ghost_cap),
                Ghost::new(cfg.candidates.1, ghost_cap),
            ],
            scores: [0, 0],
            sampled_in_epoch: 0,
            live: 0,
            wins: [0, 0],
            epochs_since_flip: cfg.min_flip_gap, // first flip is not gap-capped
            cfg,
            ways,
            shared,
            obs,
        }
    }

    /// The live candidate's policy.
    pub(crate) fn live_policy(&self) -> Policy {
        [self.cfg.candidates.0, self.cfg.candidates.1][self.live]
    }

    /// Feeds a sampled lookup to both ghosts; closes the epoch when due.
    pub(crate) fn on_get(&mut self, id: BlockAddr) -> Option<FlipDecision> {
        self.shared.sampled_gets.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.shared.metrics {
            m.sampled.inc();
        }
        for cand in 0..2 {
            if let Some(cost) = self.ghosts[cand].touch(id) {
                self.scores[cand] = self.scores[cand].saturating_add(cost);
                self.shared.record_shadow_hit(cand, cost);
            }
        }
        self.sampled_in_epoch += 1;
        if self.sampled_in_epoch >= self.cfg.epoch_len {
            self.close_epoch()
        } else {
            None
        }
    }

    /// Feeds a sampled fill to both ghosts.
    pub(crate) fn on_fill(&mut self, id: BlockAddr, cost: u64) {
        self.shared.sampled_fills.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.shared.metrics {
            m.sampled.inc();
        }
        for g in &mut self.ghosts {
            g.fill(id, cost);
        }
    }

    /// Forwards a removal to both ghosts.
    pub(crate) fn on_remove(&mut self, id: BlockAddr) {
        for g in &mut self.ghosts {
            g.remove(id);
        }
    }

    fn close_epoch(&mut self) -> Option<FlipDecision> {
        self.sampled_in_epoch = 0;
        self.epochs_since_flip = self.epochs_since_flip.saturating_add(1);
        self.shared.epochs.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.shared.metrics {
            m.epochs.inc();
        }
        let (a, b) = (self.scores[0], self.scores[1]);
        self.scores = [0, 0];
        // Ties favor the incumbent: no churn without evidence.
        let winner = match a.cmp(&b) {
            std::cmp::Ordering::Greater => 0,
            std::cmp::Ordering::Less => 1,
            std::cmp::Ordering::Equal => self.live,
        };
        let loser = 1 - winner;
        self.wins[winner] = self.wins[winner].saturating_add(1);
        self.wins[loser] = 0;
        if winner == self.live
            || self.wins[winner] < self.cfg.hysteresis
            || self.epochs_since_flip < self.cfg.min_flip_gap
        {
            return None;
        }
        let from = self.live;
        self.live = winner;
        self.epochs_since_flip = 0;
        self.wins = [0, 0];
        self.shared.record_flip(from, winner);
        let policy = self.live_policy();
        let core = match &self.obs {
            Some(obs) => policy.build_core_observed(self.ways, Arc::clone(obs)),
            None => policy.build_core(self.ways),
        };
        Some(FlipDecision { core })
    }
}

/// What the shard owns: the sampling predicate readable without a lock,
/// and the mutexed selector state.
pub(crate) struct SelectorCell {
    cfg: SelectorConfig,
    inner: std::sync::Mutex<ShardSelector>,
}

impl SelectorCell {
    pub(crate) fn new(
        cfg: SelectorConfig,
        ways: usize,
        shared: Arc<SelectorShared>,
        obs: Option<SharedObserver>,
    ) -> Self {
        SelectorCell {
            cfg,
            inner: std::sync::Mutex::new(ShardSelector::new(cfg, ways, shared, obs)),
        }
    }

    pub(crate) fn sampled(&self, id: BlockAddr) -> bool {
        self.cfg.sampled(id)
    }

    pub(crate) fn on_get(&self, id: BlockAddr) -> Option<FlipDecision> {
        self.inner
            .lock()
            .expect("selector lock poisoned")
            .on_get(id)
    }

    pub(crate) fn on_fill(&self, id: BlockAddr, cost: u64) {
        self.inner
            .lock()
            .expect("selector lock poisoned")
            .on_fill(id, cost);
    }

    pub(crate) fn on_remove(&self, id: BlockAddr) {
        self.inner
            .lock()
            .expect("selector lock poisoned")
            .on_remove(id);
    }

    /// The shard's current live policy name (for diagnostics).
    pub(crate) fn live_name(&self) -> &'static str {
        self.inner
            .lock()
            .expect("selector lock poisoned")
            .live_policy()
            .name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(cands: (Policy, Policy)) -> Arc<SelectorShared> {
        Arc::new(SelectorShared::new(cands, 1, None, None))
    }

    #[test]
    fn ghost_tracks_a_lru_miniature() {
        let mut g = Ghost::new(Policy::Lru, 2);
        g.fill(BlockAddr(1), 5);
        g.fill(BlockAddr(2), 7);
        assert_eq!(g.touch(BlockAddr(1)), Some(5));
        g.fill(BlockAddr(3), 1); // evicts 2 (LRU)
        assert_eq!(g.touch(BlockAddr(2)), None);
        assert_eq!(g.touch(BlockAddr(1)), Some(5));
        g.remove(BlockAddr(1));
        assert_eq!(g.touch(BlockAddr(1)), None);
    }

    #[test]
    fn hysteresis_defers_the_flip() {
        let cfg = SelectorConfig {
            candidates: (Policy::Lru, Policy::Slru),
            sample_every: 1,
            epoch_len: 1,
            hysteresis: 2,
            min_flip_gap: 0,
            ghost_capacity: 2,
        };
        let sh = shared(cfg.candidates);
        let mut sel = ShardSelector::new(cfg, 4, Arc::clone(&sh), None);
        // Make candidate B (index 1) hit while A misses: warm only B via a
        // direct ghost fill.
        sel.ghosts[1].fill(BlockAddr(0), 9);
        // Epoch 1: B wins once — no flip yet (hysteresis 2).
        assert!(sel.on_get(BlockAddr(0)).is_none());
        // Epoch 2: B wins again — flip fires.
        sel.ghosts[1].fill(BlockAddr(0), 9);
        let flip = sel.on_get(BlockAddr(0));
        assert!(flip.is_some(), "two consecutive wins must flip");
        assert_eq!(sel.live_policy(), Policy::Slru);
        let s = sh.stats();
        assert_eq!(s.flips, 1);
        assert_eq!(s.epochs, 2);
        assert_eq!(s.live_shards, (0, 1));
        assert!(s.shadow_savings.1 >= 18);
    }

    #[test]
    fn ties_keep_the_incumbent() {
        let cfg = SelectorConfig {
            candidates: (Policy::Lru, Policy::Slru),
            sample_every: 1,
            epoch_len: 1,
            hysteresis: 1,
            min_flip_gap: 0,
            ghost_capacity: 2,
        };
        let sh = shared(cfg.candidates);
        let mut sel = ShardSelector::new(cfg, 4, sh, None);
        // Both ghosts miss: a 0-0 tie must not flip, ever.
        for k in 0..16u64 {
            assert!(sel.on_get(BlockAddr(k)).is_none());
        }
        assert_eq!(sel.live_policy(), Policy::Lru);
    }

    #[test]
    fn flip_gap_caps_the_rate() {
        let cfg = SelectorConfig {
            candidates: (Policy::Lru, Policy::Slru),
            sample_every: 1,
            epoch_len: 1,
            hysteresis: 1,
            min_flip_gap: 1000,
            ghost_capacity: 2,
        };
        let sh = shared(cfg.candidates);
        let mut sel = ShardSelector::new(cfg, 4, sh, None);
        // First flip is allowed (the gap counter starts satisfied)...
        sel.ghosts[1].fill(BlockAddr(0), 9);
        assert!(sel.on_get(BlockAddr(0)).is_some());
        // ...but an immediate flip back is rate-capped.
        sel.ghosts[0].fill(BlockAddr(1), 9);
        assert!(sel.on_get(BlockAddr(1)).is_none());
    }

    #[test]
    fn sampling_is_by_key_identity() {
        let cfg = SelectorConfig {
            sample_every: 8,
            ..SelectorConfig::default()
        };
        assert!(cfg.sampled(BlockAddr(0)));
        assert!(cfg.sampled(BlockAddr(16)));
        assert!(!cfg.sampled(BlockAddr(17)));
        let every = SelectorConfig {
            sample_every: 1,
            ..SelectorConfig::default()
        };
        assert!(every.sampled(BlockAddr(17)));
    }
}
