//! Shard eviction-policy selection.

use csr::etd::{EtdConfig, EtdSet};
use csr::{
    AclCore, BclCore, CampCore, DclCore, EvictionPolicy, GdCore, GdsfCore, LfudaCore, LruCore,
    Observer, S3FifoCore, SlruCore,
};
use std::sync::Arc;

/// A decision observer shareable across shards and threads — what
/// [`CacheBuilder::observer`](crate::CacheBuilder::observer) accepts and
/// [`Policy::build_core_observed`] attaches to each shard's core.
pub type SharedObserver = Arc<dyn Observer + Send + Sync>;

/// Practical ceiling on a shard's Extended Tag Directory. The paper sizes
/// the ETD at `s - 1` for an `s`-way set; a shard plays the role of a set
/// with thousands of ways, where a full-size directory would cost O(s)
/// per probe for marginal extra detection. Entries beyond the ceiling
/// would also be the *oldest* displacements — the least likely to be
/// re-referenced before the reserved block.
const MAX_ETD_ENTRIES: usize = 1024;

fn shard_etd(ways: usize) -> EtdSet {
    EtdSet::new(EtdConfig {
        entries_per_set: ways.saturating_sub(1).min(MAX_ETD_ENTRIES),
        tag_bits: None,
    })
}

/// The replacement policy driving every shard of a
/// [`CsrCache`](crate::CsrCache).
///
/// Each variant instantiates the corresponding single-region core from the
/// `csr` crate — the very same code the set-associative simulator runs per
/// cache set. For arbitrary policies (custom ETD sizing, aliased tags, a
/// hand-rolled [`EvictionPolicy`]), use
/// [`CacheBuilder::policy_with`](crate::CacheBuilder::policy_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Cost-oblivious LRU — the baseline.
    Lru,
    /// GreedyDual: evict the minimum remaining value `H` (Section 2.1).
    Gd,
    /// Basic Cost-sensitive LRU: reservations with immediate pessimistic
    /// depreciation (Section 2.3).
    Bcl,
    /// Dynamic Cost-sensitive LRU: depreciation only on detected
    /// re-references via the ETD (Section 2.4).
    Dcl,
    /// Adaptive Cost-sensitive LRU: DCL gated by a 2-bit success/failure
    /// automaton per shard (Section 2.5).
    Acl,
    /// S3-FIFO: static small/main/ghost FIFO queues, scan-resistant
    /// (policy-zoo addition; cost-oblivious).
    S3Fifo,
    /// Segmented LRU: probationary + protected segments (policy zoo;
    /// cost-oblivious).
    Slru,
    /// LFU with Dynamic Aging (policy zoo; cost-oblivious).
    Lfuda,
    /// GreedyDual-Size-Frequency: cost · frequency priority with aging
    /// (policy zoo; cost-aware).
    Gdsf,
    /// CAMP-style cost-adaptive multi-queue: rounded-cost buckets scanned
    /// at their heads (policy zoo; cost-aware).
    Camp,
}

impl Policy {
    /// All variants, for sweeps. This array is the single source of truth
    /// for every policy accept-list in the workspace (the daemon's
    /// `--policy` flag, the bench matrices): a new variant added here is
    /// automatically parseable and sweepable everywhere.
    pub const ALL: [Policy; 10] = [
        Policy::Lru,
        Policy::Gd,
        Policy::Bcl,
        Policy::Dcl,
        Policy::Acl,
        Policy::S3Fifo,
        Policy::Slru,
        Policy::Lfuda,
        Policy::Gdsf,
        Policy::Camp,
    ];

    /// A short human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::Lru => "LRU",
            Policy::Gd => "GD",
            Policy::Bcl => "BCL",
            Policy::Dcl => "DCL",
            Policy::Acl => "ACL",
            Policy::S3Fifo => "S3-FIFO",
            Policy::Slru => "SLRU",
            Policy::Lfuda => "LFUDA",
            Policy::Gdsf => "GDSF",
            Policy::Camp => "CAMP",
        }
    }

    /// Parses a policy name, case-insensitively; `-` and `_` are
    /// interchangeable (so `s3fifo`, `S3-FIFO` and `s3_fifo` all name
    /// [`Policy::S3Fifo`]). The accept-list is derived from
    /// [`Policy::ALL`], so it can never fall out of sync with the enum.
    #[must_use]
    pub fn parse(s: &str) -> Option<Policy> {
        let norm = |t: &str| {
            t.chars()
                .filter(|c| *c != '-' && *c != '_')
                .map(|c| c.to_ascii_lowercase())
                .collect::<String>()
        };
        let wanted = norm(s);
        Policy::ALL.into_iter().find(|p| norm(p.name()) == wanted)
    }

    /// Builds the policy core for one shard of `ways` entries.
    #[must_use]
    pub fn build_core(self, ways: usize) -> Box<dyn EvictionPolicy + Send> {
        match self {
            Policy::Lru => Box::new(LruCore::new()),
            Policy::Gd => Box::new(GdCore::new(ways)),
            Policy::Bcl => Box::new(BclCore::new()),
            Policy::Dcl => Box::new(DclCore::new(shard_etd(ways))),
            Policy::Acl => Box::new(AclCore::new(shard_etd(ways))),
            Policy::S3Fifo => Box::new(S3FifoCore::new(ways)),
            Policy::Slru => Box::new(SlruCore::new(ways)),
            Policy::Lfuda => Box::new(LfudaCore::new(ways)),
            Policy::Gdsf => Box::new(GdsfCore::new(ways)),
            Policy::Camp => Box::new(CampCore::new(ways)),
        }
    }

    /// Builds the policy core for one shard of `ways` entries with a
    /// decision observer attached: every hit, miss, eviction, reservation,
    /// depreciation, ETD hit and automaton flip the core decides is
    /// delivered to `obs`.
    #[must_use]
    pub fn build_core_observed(
        self,
        ways: usize,
        obs: SharedObserver,
    ) -> Box<dyn EvictionPolicy + Send> {
        match self {
            Policy::Lru => Box::new(LruCore::new().with_observer(obs)),
            Policy::Gd => Box::new(GdCore::new(ways).with_observer(obs)),
            Policy::Bcl => Box::new(BclCore::new().with_observer(obs)),
            Policy::Dcl => Box::new(DclCore::new(shard_etd(ways)).with_observer(obs)),
            Policy::Acl => Box::new(AclCore::new(shard_etd(ways)).with_observer(obs)),
            Policy::S3Fifo => Box::new(S3FifoCore::new(ways).with_observer(obs)),
            Policy::Slru => Box::new(SlruCore::new(ways).with_observer(obs)),
            Policy::Lfuda => Box::new(LfudaCore::new(ways).with_observer(obs)),
            Policy::Gdsf => Box::new(GdsfCore::new(ways).with_observer(obs)),
            Policy::Camp => Box::new(CampCore::new(ways).with_observer(obs)),
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sanity used by unit tests: the built core reports the matching name.
#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{BlockAddr, Cost, SetView, Way, WayView};

    #[test]
    fn cores_report_matching_names() {
        for p in Policy::ALL {
            assert_eq!(p.build_core(8).name(), p.name());
            assert_eq!(format!("{p}"), p.name());
        }
    }

    #[test]
    fn parse_round_trips_every_variant() {
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.name()), Some(p));
            assert_eq!(Policy::parse(&p.name().to_ascii_lowercase()), Some(p));
        }
        assert_eq!(Policy::parse("s3fifo"), Some(Policy::S3Fifo));
        assert_eq!(Policy::parse("s3_fifo"), Some(Policy::S3Fifo));
        assert_eq!(Policy::parse("nope"), None);
    }

    #[test]
    fn etd_sizing_is_capped() {
        assert_eq!(shard_etd(4).config().entries_per_set, 3);
        assert_eq!(
            shard_etd(1_000_000).config().entries_per_set,
            MAX_ETD_ENTRIES
        );
        assert_eq!(shard_etd(1).config().entries_per_set, 0);
    }

    #[test]
    fn built_cores_pick_victims() {
        let entries: Vec<WayView> = (0..4)
            .map(|i| WayView {
                way: Way(i),
                block: BlockAddr(i as u64),
                cost: Cost(1),
                dirty: false,
            })
            .collect();
        for p in Policy::ALL {
            let mut core = p.build_core(4);
            let v = core.victim(&SetView::new(&entries));
            // Uniform costs: every policy falls back to the LRU way.
            assert_eq!(v, Way(3), "{p}");
        }
    }
}
