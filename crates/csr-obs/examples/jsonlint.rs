//! Validates that files contain well-formed JSON, using the crate's own
//! parser. CI runs this over every `BENCH_*.json` and metrics snapshot the
//! examples and benches emit:
//!
//! ```text
//! cargo run -p csr-obs --example jsonlint -- BENCH_table1.json metrics.json
//! cargo run -p csr-obs --example jsonlint -- --jsonl TRACES.jsonl
//! ```
//!
//! With `--jsonl`, each following file is JSON Lines: every non-empty
//! line must parse as its own JSON document (the trace-dump format).
//!
//! Exits non-zero (with the parse error and byte offset) if any file fails.

use csr_obs::Json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jsonl = args.first().is_some_and(|a| a == "--jsonl");
    let paths = &args[usize::from(jsonl)..];
    if paths.is_empty() {
        eprintln!("usage: jsonlint [--jsonl] <file.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        if jsonl {
            let mut lines = 0usize;
            let mut ok = true;
            for (idx, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                lines += 1;
                if let Err(e) = Json::parse(line) {
                    eprintln!("{path}:{}: invalid JSON: {e}", idx + 1);
                    ok = false;
                    failed = true;
                }
            }
            if ok {
                println!("{path}: ok ({lines} JSONL records)");
            }
        } else {
            match Json::parse(&text) {
                Ok(_) => println!("{path}: ok"),
                Err(e) => {
                    eprintln!("{path}: invalid JSON: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
