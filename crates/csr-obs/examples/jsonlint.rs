//! Validates that files contain well-formed JSON, using the crate's own
//! parser. CI runs this over every `BENCH_*.json` and metrics snapshot the
//! examples and benches emit:
//!
//! ```text
//! cargo run -p csr-obs --example jsonlint -- BENCH_table1.json metrics.json
//! ```
//!
//! Exits non-zero (with the parse error and byte offset) if any file fails.

use csr_obs::Json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: jsonlint <file.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match Json::parse(&text) {
            Ok(_) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
