//! A minimal, dependency-free JSON value tree with a renderer and parser.
//!
//! The exporters ([`crate::export`]) *render* through this module, and CI
//! smoke checks *parse* the rendered text back, so any drift in the
//! emitted format fails loudly instead of silently corrupting downstream
//! tooling. This is deliberately not a general-purpose JSON library: it
//! covers exactly RFC 8259 syntax with `i64`/`f64` numbers, which is all
//! the workspace's machine-readable outputs need.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A finite float. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys (insertion via [`Json::obj`]).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an integer from a `u64`, falling back to a float beyond
    /// `i64::MAX` (the only lossy corner, and one no workspace counter
    /// reaches).
    #[must_use]
    pub fn uint(v: u64) -> Json {
        i64::try_from(v).map_or(Json::Float(v as f64), Json::Int)
    }

    /// The object member `key`, if this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value as `f64` (int or float).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps round-trip precision and always includes
                    // a decimal point or exponent.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax violation and
    /// its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the workspace never emits astral-plane text.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("bad \\u escape (surrogate)"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always well-formed).
                    let s = &self.bytes[start..];
                    let ch_len = std::str::from_utf8(s)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    out.push_str(std::str::from_utf8(&s[..ch_len]).expect("validated utf-8"));
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let v = Json::obj([
            ("name", Json::str("csr")),
            ("count", Json::uint(123_456_789_012)),
            ("neg", Json::Int(-7)),
            ("rate", Json::Float(0.25)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Int(1), Json::str("two"), Json::Float(3.5)]),
            ),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("rendered JSON must parse");
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::str("quote \" backslash \\ newline \n tab \t unicode \u{1F600} ctrl \u{1}");
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] , \"c\" : -2.5e1 } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::Int(1));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} extra",
            "[1 2]",
            "nul",
            "\"bad \\q escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn big_u64_falls_back_to_float() {
        assert_eq!(Json::uint(42), Json::Int(42));
        let big = Json::uint(u64::MAX);
        assert!(matches!(big, Json::Float(_)));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"s\":\"x\",\"i\":3}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("i").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.as_f64(), None);
    }
}
