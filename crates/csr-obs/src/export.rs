//! Exporters: Prometheus text format and JSON snapshots.
//!
//! Both render a [`RegistrySnapshot`], so the numbers a Prometheus scrape
//! sees and the numbers a `BENCH_*.json` file records are byte-for-byte
//! the same snapshot. The JSON side goes through [`crate::json::Json`],
//! whose parser the tests (and CI) use to confirm the output stays
//! well-formed.

use crate::json::Json;
use crate::metrics::HistogramSnapshot;
use crate::registry::{LabelSet, RegistrySnapshot, SampleValue};
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` headers per family, histogram samples as
/// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
#[must_use]
pub fn prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for fam in &snap.families {
        if !fam.help.is_empty() {
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
        }
        let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
        for sample in &fam.samples {
            match &sample.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", fam.name, labels(&sample.labels, None));
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", fam.name, labels(&sample.labels, None));
                }
                SampleValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (upper, count) in h.nonzero_buckets() {
                        cumulative += count;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            fam.name,
                            labels(&sample.labels, Some(&upper.to_string()))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        fam.name,
                        labels(&sample.labels, Some("+Inf")),
                        h.count()
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        fam.name,
                        labels(&sample.labels, None),
                        h.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        fam.name,
                        labels(&sample.labels, None),
                        h.count()
                    );
                }
            }
        }
    }
    out
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a `{k="v",...}` label block, optionally with a trailing
/// `le="..."` (histogram buckets). Empty when there are no labels.
fn labels(set: &LabelSet, le: Option<&str>) -> String {
    if set.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = set
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Converts a histogram snapshot to its JSON object form (shared by
/// [`json`] and any ad-hoc report that embeds a histogram).
#[must_use]
pub fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::uint(h.count())),
        ("sum", Json::uint(h.sum())),
        ("max", Json::uint(h.max())),
        ("mean", Json::Float(h.mean())),
        ("p50", Json::uint(h.p50())),
        ("p90", Json::uint(h.p90())),
        ("p99", Json::uint(h.p99())),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(upper, count)| {
                        Json::obj([("le", Json::uint(upper)), ("count", Json::uint(count))])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders a snapshot as a JSON value:
///
/// ```json
/// {"families": [{"name": ..., "kind": ..., "help": ...,
///                "samples": [{"labels": {...}, "value": ...}]}]}
/// ```
///
/// Counter/gauge samples carry a numeric `value`; histogram samples carry
/// an object with `count`, `sum`, `max`, `mean`, `p50`, `p90`, `p99`, and
/// the non-empty `buckets`.
#[must_use]
pub fn json_value(snap: &RegistrySnapshot) -> Json {
    Json::obj([(
        "families",
        Json::Arr(
            snap.families
                .iter()
                .map(|fam| {
                    Json::obj([
                        ("name", Json::str(fam.name.clone())),
                        ("kind", Json::str(fam.kind.as_str())),
                        ("help", Json::str(fam.help.clone())),
                        (
                            "samples",
                            Json::Arr(
                                fam.samples
                                    .iter()
                                    .map(|s| {
                                        Json::obj([
                                            (
                                                "labels",
                                                Json::Obj(
                                                    s.labels
                                                        .iter()
                                                        .map(|(k, v)| {
                                                            (k.clone(), Json::str(v.clone()))
                                                        })
                                                        .collect(),
                                                ),
                                            ),
                                            (
                                                "value",
                                                match &s.value {
                                                    SampleValue::Counter(v) => Json::uint(*v),
                                                    SampleValue::Gauge(v) => Json::Int(*v),
                                                    SampleValue::Histogram(h) => histogram_json(h),
                                                },
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Renders a snapshot as JSON text (see [`json_value`]).
#[must_use]
pub fn json(snap: &RegistrySnapshot) -> String {
    json_value(snap).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("ops_total", "total ops", &[("op", "get")])
            .add(10);
        r.counter("ops_total", "total ops", &[("op", "insert")])
            .add(4);
        r.gauge("resident", "entries", &[]).set(7);
        let h = r.histogram("latency_ns", "op latency", &[("shard", "0")]);
        for v in [5u64, 9, 100, 100, 4000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn prometheus_format_shape() {
        let text = prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("# HELP ops_total total ops"));
        assert!(text.contains("ops_total{op=\"get\"} 10"));
        assert!(text.contains("ops_total{op=\"insert\"} 4"));
        assert!(text.contains("# TYPE resident gauge"));
        assert!(text.contains("resident 7"));
        assert!(text.contains("# TYPE latency_ns histogram"));
        assert!(text.contains("latency_ns_bucket{shard=\"0\",le=\"+Inf\"} 5"));
        assert!(text.contains("latency_ns_sum{shard=\"0\"} 4214"));
        assert!(text.contains("latency_ns_count{shard=\"0\"} 5"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let text = prometheus(&sample_registry().snapshot());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("latency_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 5);
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let r = Registry::new();
        r.counter("m", "", &[("path", "a\"b\\c")]).inc();
        let text = prometheus(&r.snapshot());
        assert!(text.contains("m{path=\"a\\\"b\\\\c\"} 1"));
    }

    #[test]
    fn json_parses_and_round_trips_numbers() {
        let snap = sample_registry().snapshot();
        let text = json(&snap);
        let parsed = Json::parse(&text).expect("exported JSON must parse");
        let families = parsed.get("families").unwrap().as_arr().unwrap();
        let by_name = |name: &str| {
            families
                .iter()
                .find(|f| f.get("name").unwrap().as_str() == Some(name))
                .unwrap()
        };
        let ops = by_name("ops_total")
            .get("samples")
            .unwrap()
            .as_arr()
            .unwrap();
        let get_sample = ops
            .iter()
            .find(|s| s.get("labels").unwrap().get("op").unwrap().as_str() == Some("get"))
            .unwrap();
        assert_eq!(get_sample.get("value").unwrap().as_i64(), Some(10));
        let hist = by_name("latency_ns")
            .get("samples")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .get("value")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_i64(), Some(5));
        assert_eq!(hist.get("sum").unwrap().as_i64(), Some(4214));
    }

    #[test]
    fn prometheus_and_json_agree() {
        // The acceptance check: both exports come from one snapshot and
        // report the same numbers.
        let snap = sample_registry().snapshot();
        let prom = prometheus(&snap);
        let parsed = Json::parse(&json(&snap)).unwrap();
        for fam in parsed.get("families").unwrap().as_arr().unwrap() {
            let name = fam.get("name").unwrap().as_str().unwrap();
            let kind = fam.get("kind").unwrap().as_str().unwrap();
            for s in fam.get("samples").unwrap().as_arr().unwrap() {
                match kind {
                    "counter" | "gauge" => {
                        let v = s.get("value").unwrap().as_i64().unwrap();
                        let line = prom
                            .lines()
                            .find(|l| l.starts_with(name) && l.ends_with(&format!(" {v}")));
                        assert!(line.is_some(), "no prom line for {name} = {v}");
                    }
                    "histogram" => {
                        let count = s
                            .get("value")
                            .unwrap()
                            .get("count")
                            .unwrap()
                            .as_i64()
                            .unwrap();
                        let line = format!("{name}_count{{shard=\"0\"}} {count}");
                        assert!(prom.contains(&line), "missing {line:?}");
                    }
                    other => panic!("unexpected kind {other}"),
                }
            }
        }
    }

    #[test]
    fn prometheus_golden_output() {
        // Byte-for-byte conformance pin: families sorted by name, one
        // # TYPE line per family even with several label sets, every
        // histogram sample carrying _bucket/+Inf/_sum/_count. Buckets
        // below 8 are value-exact, so the golden text is stable.
        let r = Registry::new();
        r.counter("req_total", "requests", &[("op", "get")]).add(3);
        r.counter("req_total", "requests", &[("op", "set")]).add(1);
        let h0 = r.histogram("lat_us", "latency", &[("shard", "0")]);
        h0.record(1);
        h0.record(1);
        h0.record(3);
        let h1 = r.histogram("lat_us", "latency", &[("shard", "1")]);
        h1.record(2);
        let golden = "\
# HELP lat_us latency
# TYPE lat_us histogram
lat_us_bucket{shard=\"0\",le=\"1\"} 2
lat_us_bucket{shard=\"0\",le=\"3\"} 3
lat_us_bucket{shard=\"0\",le=\"+Inf\"} 3
lat_us_sum{shard=\"0\"} 5
lat_us_count{shard=\"0\"} 3
lat_us_bucket{shard=\"1\",le=\"2\"} 1
lat_us_bucket{shard=\"1\",le=\"+Inf\"} 1
lat_us_sum{shard=\"1\"} 2
lat_us_count{shard=\"1\"} 1
# HELP req_total requests
# TYPE req_total counter
req_total{op=\"get\"} 3
req_total{op=\"set\"} 1
";
        assert_eq!(prometheus(&r.snapshot()), golden);
    }

    #[test]
    fn prometheus_conformance_audit() {
        // Every family must emit exactly one # TYPE line no matter how
        // many label sets it has, and every histogram sample — including
        // a registered-but-never-recorded one — must expose _sum and
        // _count.
        let r = Registry::new();
        for shard in ["0", "1", "2"] {
            r.histogram("phase_us", "per-phase latency", &[("phase", shard)])
                .record(7);
        }
        let _ = r.histogram("idle_us", "never recorded", &[]);
        r.counter("hits_total", "hits", &[("node", "a")]).inc();
        r.counter("hits_total", "hits", &[("node", "b")]).inc();
        let text = prometheus(&r.snapshot());
        for fam in ["phase_us", "idle_us", "hits_total"] {
            let type_lines = text
                .lines()
                .filter(|l| l.starts_with(&format!("# TYPE {fam} ")))
                .count();
            assert_eq!(type_lines, 1, "family {fam} must have one TYPE line");
        }
        for shard in ["0", "1", "2"] {
            assert!(text.contains(&format!("phase_us_sum{{phase=\"{shard}\"}} 7")));
            assert!(text.contains(&format!("phase_us_count{{phase=\"{shard}\"}} 1")));
        }
        // An empty histogram still exposes the full sample set.
        assert!(text.contains("idle_us_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("idle_us_sum 0"));
        assert!(text.contains("idle_us_count 0"));
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let r = Registry::new();
        assert_eq!(prometheus(&r.snapshot()), "");
        let parsed = Json::parse(&json(&r.snapshot())).unwrap();
        assert_eq!(parsed.get("families").unwrap().as_arr().unwrap().len(), 0);
    }
}
