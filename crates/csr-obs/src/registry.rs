//! A registry of labelled metric families.
//!
//! A *family* is a metric name plus a kind ([`MetricKind`]) and help text;
//! each distinct label set under the name is one live metric instance.
//! Handles returned by [`Registry::counter`] and friends are `Arc`s to the
//! underlying atomics: registration takes a short mutex, but every
//! subsequent record is lock-free. [`Registry::snapshot`] freezes the whole
//! registry into plain data for the exporters in [`crate::export`].

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Log-bucketed histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A sorted, owned label set (`key=value` pairs).
pub type LabelSet = Vec<(String, String)>;

fn owned_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut v: LabelSet = labels
        .iter()
        .map(|(k, val)| ((*k).to_owned(), (*val).to_owned()))
        .collect();
    v.sort();
    v
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    kind: MetricKind,
    help: String,
    metrics: BTreeMap<LabelSet, Metric>,
}

/// A collection of labelled metric families. Cheap to share (`Arc` it) and
/// safe to register into from any thread.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn metric(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut families = self.families.lock().expect("registry lock poisoned");
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            kind,
            help: help.to_owned(),
            metrics: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric family {name:?} registered as {} but requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        match family
            .metrics
            .entry(owned_labels(labels))
            .or_insert_with(make)
        {
            Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
            Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
            Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
        }
    }

    /// The counter `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.metric(name, help, labels, MetricKind::Counter, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// The gauge `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.metric(name, help, labels, MetricKind::Gauge, || {
            Metric::Gauge(Arc::new(Gauge::new()))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// The histogram `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind.
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.metric(name, help, labels, MetricKind::Histogram, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Freezes every family into plain data, sorted by name then labels.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().expect("registry lock poisoned");
        RegistrySnapshot {
            families: families
                .iter()
                .map(|(name, f)| FamilySnapshot {
                    name: name.clone(),
                    kind: f.kind,
                    help: f.help.clone(),
                    samples: f
                        .metrics
                        .iter()
                        .map(|(labels, m)| Sample {
                            labels: labels.clone(),
                            value: match m {
                                Metric::Counter(c) => SampleValue::Counter(c.get()),
                                Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                                Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// A frozen copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// Families, sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl RegistrySnapshot {
    /// The family named `name`, if present.
    #[must_use]
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }
}

/// One metric family in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Family (metric) name.
    pub name: String,
    /// Kind shared by every sample.
    pub kind: MetricKind,
    /// Help text.
    pub help: String,
    /// One sample per label set, sorted by labels.
    pub samples: Vec<Sample>,
}

impl FamilySnapshot {
    /// The sample whose label set contains all of `labels`, if any.
    #[must_use]
    pub fn sample_with(&self, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            labels
                .iter()
                .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
    }

    /// Merges every histogram sample of the family into one snapshot
    /// (e.g. per-shard latency histograms into a cache-wide view).
    /// Returns `None` if the family is not a histogram family.
    #[must_use]
    pub fn merged_histogram(&self) -> Option<HistogramSnapshot> {
        if self.kind != MetricKind::Histogram {
            return None;
        }
        let mut merged = HistogramSnapshot::empty();
        for s in &self.samples {
            if let SampleValue::Histogram(h) = &s.value {
                merged.merge(h);
            }
        }
        Some(merged)
    }
}

/// One labelled sample of a family.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sorted label pairs.
    pub labels: LabelSet,
    /// The sampled value.
    pub value: SampleValue,
}

/// The value of a [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

impl SampleValue {
    /// The counter value, if this is a counter sample.
    #[must_use]
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, if this is a histogram sample.
    #[must_use]
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let r = Registry::new();
        let a = r.counter("ops_total", "ops", &[("op", "get")]);
        let b = r.counter("ops_total", "ops", &[("op", "get")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles must alias one counter");
        // A different label set is a different instance.
        let c = r.counter("ops_total", "ops", &[("op", "insert")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter("m", "", &[("a", "1"), ("b", "2")]);
        let b = r.counter("m", "", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("m", "", &[]);
        let _ = r.gauge("m", "", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z_total", "", &[]).add(5);
        r.gauge("a_gauge", "", &[("shard", "1")]).set(-2);
        r.histogram("lat", "", &[]).record(7);
        let s = r.snapshot();
        let names: Vec<&str> = s.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a_gauge", "lat", "z_total"]);
        assert_eq!(
            s.family("z_total").unwrap().samples[0].value,
            SampleValue::Counter(5)
        );
        assert_eq!(
            s.family("a_gauge")
                .unwrap()
                .sample_with(&[("shard", "1")])
                .unwrap()
                .value,
            SampleValue::Gauge(-2)
        );
        let h = s.family("lat").unwrap().merged_histogram().unwrap();
        assert_eq!((h.count(), h.sum()), (1, 7));
    }

    #[test]
    fn merged_histogram_sums_shards() {
        let r = Registry::new();
        r.histogram("lat", "", &[("shard", "0")]).record(10);
        r.histogram("lat", "", &[("shard", "1")]).record(30);
        let merged = r
            .snapshot()
            .family("lat")
            .unwrap()
            .merged_histogram()
            .unwrap();
        assert_eq!((merged.count(), merged.sum(), merged.max()), (2, 40, 30));
        assert!(r
            .snapshot()
            .family("lat")
            .unwrap()
            .merged_histogram()
            .is_some());
        assert!(r.snapshot().families[0].merged_histogram().is_some());
    }
}
