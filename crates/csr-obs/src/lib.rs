//! # csr-obs — observability for the cost-sensitive cache workspace
//!
//! A dependency-free metrics and decision-tracing layer shared by the
//! `csr` policy cores, the `csr-cache` concurrent cache, the trace-driven
//! harness, and the bench binaries:
//!
//! * **Metrics** — [`Counter`] / [`Gauge`] on relaxed atomics and a
//!   lock-free log-bucketed [`Histogram`] (p50/p90/p99/max, mergeable
//!   across shards), organized into labelled families by a [`Registry`].
//! * **Decision events** — the [`Observer`] trait receives the individual
//!   hit/miss/evict/reserve/depreciate/ETD-hit/automaton-flip decisions of
//!   a replacement policy. [`NopObserver`] (the default everywhere)
//!   compiles to nothing; [`EventTracer`] keeps a bounded ring of recent
//!   events; [`CountingObserver`] keeps per-kind totals;
//!   [`MetricsObserver`] feeds a [`Registry`].
//! * **Export** — [`export::prometheus`] (text exposition format) and
//!   [`export::json`] (hand-rolled, validated by the bundled [`Json`]
//!   parser), plus a periodic [`Reporter`] thread.
//! * **Tracing** — `csr-trace` ([`trace`] + [`span`]): a sampled
//!   distributed tracer with wire-propagatable [`TraceContext`]s,
//!   monotonic-clock spans, always-keep-slow capture, and a bounded
//!   never-blocking ring of finished traces exportable as JSONL or
//!   Chrome trace-event JSON (Perfetto-openable).
//!
//! ```
//! use csr_obs::{Registry, export};
//!
//! let registry = Registry::new();
//! registry.counter("requests_total", "requests", &[("route", "/get")]).inc();
//! let lat = registry.histogram("latency_ns", "op latency", &[]);
//! lat.record(1_250);
//! lat.record(480);
//!
//! let snap = registry.snapshot();
//! println!("{}", export::prometheus(&snap)); // scrape body
//! println!("{}", export::json(&snap));       // same numbers, JSON
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod metrics;
pub mod observe;
pub mod registry;
pub mod reporter;
pub mod span;
pub mod trace;

pub use json::{Json, JsonError};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use observe::{
    CountingObserver, DecisionEvent, EventCounts, EventTracer, MetricsObserver, NopObserver,
    Observer, TracedEvent,
};
pub use registry::{
    FamilySnapshot, LabelSet, MetricKind, Registry, RegistrySnapshot, Sample, SampleValue,
};
pub use reporter::{ReportFormat, Reporter};
pub use span::{SpanEvent, SpanRecord, SpanTimer, TraceContext};
pub use trace::{FinishedRequest, RequestTrace, TraceConfig, TraceEntry, Tracer};

/// A shareable, type-erased observer — what the concurrent cache and the
/// experiment harness pass around when the concrete observer is chosen at
/// run time.
pub type SharedObserver = std::sync::Arc<dyn Observer + Send + Sync>;
