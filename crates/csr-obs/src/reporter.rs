//! A background thread that periodically dumps a registry to a writer.

use crate::export;
use crate::registry::Registry;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The dump format of a [`Reporter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Prometheus text exposition format.
    Prometheus,
    /// One JSON snapshot per dump, newline-terminated (JSON-lines).
    Json,
}

/// Periodically renders a [`Registry`] snapshot into a writer from a
/// background thread — a file tail or a pipe becomes a poor man's scrape
/// endpoint. One final dump is written on [`stop`](Reporter::stop), so even
/// an interval longer than the program's life yields a complete report.
///
/// ```
/// use csr_obs::{Registry, Reporter, ReportFormat};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let registry = Arc::new(Registry::new());
/// let reporter = Reporter::spawn(
///     Arc::clone(&registry),
///     Duration::from_secs(10),
///     Vec::new(), // any std::io::Write
///     ReportFormat::Json,
/// );
/// registry.counter("ticks_total", "", &[]).inc();
/// let buf = reporter.stop().expect("writer returned on stop");
/// assert!(String::from_utf8(buf).unwrap().contains("ticks_total"));
/// ```
pub struct Reporter<W: Write + Send + 'static> {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<std::io::Result<W>>,
}

impl<W: Write + Send + 'static> Reporter<W> {
    /// Starts the reporting thread: a dump every `interval`, plus a final
    /// dump when stopped.
    #[must_use]
    pub fn spawn(
        registry: Arc<Registry>,
        interval: Duration,
        mut writer: W,
        format: ReportFormat,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // Sleep in short slices so stop() returns promptly even for
            // long intervals.
            let slice = interval
                .min(Duration::from_millis(20))
                .max(Duration::from_millis(1));
            let mut elapsed = Duration::ZERO;
            loop {
                if stop_flag.load(Ordering::Acquire) {
                    dump(&registry, &mut writer, format)?;
                    writer.flush()?;
                    return Ok(writer);
                }
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    dump(&registry, &mut writer, format)?;
                    writer.flush()?;
                }
                std::thread::sleep(slice);
                elapsed += slice;
            }
        });
        Reporter { stop, handle }
    }

    /// Stops the thread after one final dump and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error the reporting thread hit.
    pub fn stop(self) -> std::io::Result<W> {
        self.stop.store(true, Ordering::Release);
        match self.handle.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

fn dump<W: Write>(
    registry: &Registry,
    writer: &mut W,
    format: ReportFormat,
) -> std::io::Result<()> {
    let snap = registry.snapshot();
    match format {
        ReportFormat::Prometheus => writer.write_all(export::prometheus(&snap).as_bytes()),
        ReportFormat::Json => {
            writer.write_all(export::json(&snap).as_bytes())?;
            writer.write_all(b"\n")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn final_dump_happens_on_stop() {
        let registry = Arc::new(Registry::new());
        registry.counter("n_total", "", &[]).add(3);
        // Interval far longer than the test: only the stop dump fires.
        let rep = Reporter::spawn(
            Arc::clone(&registry),
            Duration::from_secs(3600),
            Vec::new(),
            ReportFormat::Prometheus,
        );
        let out = String::from_utf8(rep.stop().unwrap()).unwrap();
        assert!(out.contains("n_total 3"), "{out}");
    }

    #[test]
    fn periodic_json_lines_parse() {
        let registry = Arc::new(Registry::new());
        registry.counter("ticks_total", "", &[]).inc();
        let rep = Reporter::spawn(
            Arc::clone(&registry),
            Duration::from_millis(5),
            Vec::new(),
            ReportFormat::Json,
        );
        std::thread::sleep(Duration::from_millis(60));
        let out = String::from_utf8(rep.stop().unwrap()).unwrap();
        let lines: Vec<&str> = out.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines.len() >= 2, "expected periodic + final dumps: {out:?}");
        for line in lines {
            Json::parse(line).expect("every dump must be valid JSON");
        }
    }
}
