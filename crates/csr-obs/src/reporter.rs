//! A background thread that periodically dumps a registry to a writer.

use crate::export;
use crate::registry::Registry;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The dump format of a [`Reporter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Prometheus text exposition format.
    Prometheus,
    /// One JSON snapshot per dump, newline-terminated (JSON-lines).
    Json,
}

/// Periodically renders a [`Registry`] snapshot into a writer from a
/// background thread — a file tail or a pipe becomes a poor man's scrape
/// endpoint. One final dump is written on [`stop`](Reporter::stop) — or,
/// if the reporter is simply dropped, from `Drop` — so even an interval
/// longer than the program's life yields a complete report, and a
/// shutdown path that forgets to call `stop` cannot lose the last
/// reporting interval. (Prefer `stop` when the writer or an I/O error
/// matters: `Drop` must swallow both.)
///
/// ```
/// use csr_obs::{Registry, Reporter, ReportFormat};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let registry = Arc::new(Registry::new());
/// let reporter = Reporter::spawn(
///     Arc::clone(&registry),
///     Duration::from_secs(10),
///     Vec::new(), // any std::io::Write
///     ReportFormat::Json,
/// );
/// registry.counter("ticks_total", "", &[]).inc();
/// let buf = reporter.stop().expect("writer returned on stop");
/// assert!(String::from_utf8(buf).unwrap().contains("ticks_total"));
/// ```
pub struct Reporter<W: Write + Send + 'static> {
    stop: Arc<AtomicBool>,
    /// `Some` while the reporting thread runs; taken by `stop` / `Drop`.
    handle: Option<JoinHandle<std::io::Result<W>>>,
}

impl<W: Write + Send + 'static> Reporter<W> {
    /// Starts the reporting thread: a dump every `interval`, plus a final
    /// dump when stopped.
    #[must_use]
    pub fn spawn(
        registry: Arc<Registry>,
        interval: Duration,
        mut writer: W,
        format: ReportFormat,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // Sleep in short slices so stop() returns promptly even for
            // long intervals.
            let slice = interval
                .min(Duration::from_millis(20))
                .max(Duration::from_millis(1));
            let mut elapsed = Duration::ZERO;
            loop {
                if stop_flag.load(Ordering::Acquire) {
                    dump(&registry, &mut writer, format)?;
                    writer.flush()?;
                    return Ok(writer);
                }
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    dump(&registry, &mut writer, format)?;
                    writer.flush()?;
                }
                std::thread::sleep(slice);
                elapsed += slice;
            }
        });
        Reporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread after one final dump and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error the reporting thread hit.
    pub fn stop(mut self) -> std::io::Result<W> {
        self.join()
            .expect("stop can only run while the thread is live")
    }

    /// Signals the thread and joins it; `None` if already joined.
    fn join(&mut self) -> Option<std::io::Result<W>> {
        let handle = self.handle.take()?;
        self.stop.store(true, Ordering::Release);
        match handle.join() {
            Ok(result) => Some(result),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl<W: Write + Send + 'static> Drop for Reporter<W> {
    /// A dropped reporter still flushes: the final dump is written before
    /// the thread is torn down. The writer (and any I/O error) is
    /// discarded — call [`stop`](Reporter::stop) to receive both.
    fn drop(&mut self) {
        let _ = self.join();
    }
}

fn dump<W: Write>(
    registry: &Registry,
    writer: &mut W,
    format: ReportFormat,
) -> std::io::Result<()> {
    let snap = registry.snapshot();
    match format {
        ReportFormat::Prometheus => writer.write_all(export::prometheus(&snap).as_bytes()),
        ReportFormat::Json => {
            writer.write_all(export::json(&snap).as_bytes())?;
            writer.write_all(b"\n")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn final_dump_happens_on_stop() {
        let registry = Arc::new(Registry::new());
        registry.counter("n_total", "", &[]).add(3);
        // Interval far longer than the test: only the stop dump fires.
        let rep = Reporter::spawn(
            Arc::clone(&registry),
            Duration::from_secs(3600),
            Vec::new(),
            ReportFormat::Prometheus,
        );
        let out = String::from_utf8(rep.stop().unwrap()).unwrap();
        assert!(out.contains("n_total 3"), "{out}");
    }

    /// A `Write` handle into a shared buffer, so a test can read what a
    /// reporter wrote even when the reporter (and its writer) is dropped.
    #[derive(Clone)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn drop_flushes_the_final_interval() {
        let registry = Arc::new(Registry::new());
        registry.counter("last_interval_total", "", &[]).add(7);
        let buf = SharedBuf(Arc::new(std::sync::Mutex::new(Vec::new())));
        let rep = Reporter::spawn(
            Arc::clone(&registry),
            Duration::from_secs(3600),
            buf.clone(),
            ReportFormat::Prometheus,
        );
        // No stop() — the shutdown path "forgot". Drop must still dump.
        drop(rep);
        let out = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(out.contains("last_interval_total 7"), "{out}");
    }

    #[test]
    fn periodic_json_lines_parse() {
        let registry = Arc::new(Registry::new());
        registry.counter("ticks_total", "", &[]).inc();
        let rep = Reporter::spawn(
            Arc::clone(&registry),
            Duration::from_millis(5),
            Vec::new(),
            ReportFormat::Json,
        );
        std::thread::sleep(Duration::from_millis(60));
        let out = String::from_utf8(rep.stop().unwrap()).unwrap();
        let lines: Vec<&str> = out.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines.len() >= 2, "expected periodic + final dumps: {out:?}");
        for line in lines {
            Json::parse(line).expect("every dump must be valid JSON");
        }
    }
}
