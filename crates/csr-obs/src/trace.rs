//! `csr-trace`: a sampled distributed tracer with a bounded,
//! never-blocking ring of finished traces.
//!
//! Design constraints, in order:
//!
//! 1. **The untraced hot path costs nothing.** When a request carries no
//!    `TRACE` token and both sampling knobs are off, [`Tracer::begin`]
//!    is two field loads and returns `None` — no allocation, no atomic
//!    write, no ring traffic. The e2e suite asserts this.
//! 2. **Recording never blocks a request.** The ring is a fixed array of
//!    slots guarded by per-slot mutexes that writers only `try_lock`; a
//!    contended slot drops the trace (counted) instead of waiting.
//!    Readers ([`Tracer::snapshot`]) take real locks, which is safe
//!    because writers never wait on them.
//! 3. **Slow requests are never missed.** With `slow_us` set, *every*
//!    request is traced and the keep/drop decision moves to
//!    [`Tracer::finish`]: sampled traces are kept as before, and any
//!    trace over the threshold is kept regardless of the sample rate.
//!
//! Sampling semantics (normative, mirrored in `PROTOCOL.md`):
//!
//! * An incoming [`TraceContext`] (wire `TRACE` token) always traces and
//!   always keeps — explicit propagation wins, so a traced client
//!   observes its trace regardless of server knobs.
//! * `sample_every = N` keeps 1-in-N of locally originated requests.
//! * `slow_us = U` additionally keeps any request slower than U µs.
//!
//! The thread-local *event collector* ([`arm_events`] / [`emit_event`] /
//! [`take_events`]) lets deeply nested middleware (retry loops, circuit
//! breakers, deadline guards) annotate the current request's origin span
//! without threading a handle through every layer: the request handler
//! arms it only when the request is traced, so an unarmed [`emit_event`]
//! is a thread-local flag check.

use crate::json::Json;
use crate::span::{unix_us, SpanEvent, SpanRecord, SpanTimer, TraceContext};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tracer knobs. All off by default: a default-configured tracer never
/// records anything on its own (it still honors incoming contexts).
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Keep 1-in-N locally originated requests; 0 disables sampling.
    pub sample_every: u64,
    /// Keep any request slower than this many microseconds; 0 disables
    /// (and with it the trace-everything behavior it requires).
    pub slow_us: u64,
    /// Finished-trace ring capacity (entries). Oldest entries are
    /// overwritten.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            sample_every: 0,
            slow_us: 0,
            capacity: 256,
        }
    }
}

/// One kept trace fragment: every span this node recorded for one
/// request, plus whether it crossed the slow threshold.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// The trace the spans belong to.
    pub trace_id: u64,
    /// True when the root span exceeded the tracer's `slow_us`.
    pub slow: bool,
    /// The spans, root first.
    pub spans: Vec<SpanRecord>,
}

impl TraceEntry {
    /// The entry as a JSON object — one line of the JSONL export.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::str(format!("{:016x}", self.trace_id))),
            (
                "node",
                Json::str(
                    self.spans
                        .first()
                        .map_or("", |s| s.node.as_ref())
                        .to_owned(),
                ),
            ),
            ("slow", Json::Bool(self.slow)),
            (
                "spans",
                Json::Arr(self.spans.iter().map(SpanRecord::to_json).collect()),
            ),
        ])
    }
}

/// splitmix64-style finalizer: uncorrelates ids derived from a counter.
fn mix64(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The per-node tracer: sampling decisions, id generation, and the
/// bounded ring of kept traces.
pub struct Tracer {
    node: Arc<str>,
    config: TraceConfig,
    id_seed: u64,
    /// Locally originated request counter — drives 1-in-N sampling.
    seq: AtomicU64,
    /// Id-generation counter, separate from `seq` so root-id draws for
    /// propagated traces don't skew the sampling stream.
    ids: AtomicU64,
    /// Ring write cursor (monotonically increasing; slot = cursor % cap).
    head: AtomicU64,
    slots: Vec<Mutex<Option<TraceEntry>>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Tracer {
    /// Builds a tracer for `node` (the id stamped on every span —
    /// csr-serve uses the listen address).
    #[must_use]
    pub fn new(node: &str, config: TraceConfig) -> Tracer {
        let capacity = config.capacity.max(1);
        Tracer {
            node: Arc::from(node),
            config,
            id_seed: mix64(fnv1a(node), unix_us()) | 1,
            seq: AtomicU64::new(0),
            ids: AtomicU64::new(0),
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The node id spans are stamped with.
    #[must_use]
    pub fn node(&self) -> &Arc<str> {
        &self.node
    }

    /// Whether this tracer ever records locally originated traces.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.config.sample_every > 0 || self.config.slow_us > 0
    }

    /// The configured slow threshold (µs; 0 = off).
    #[must_use]
    pub fn slow_us(&self) -> u64 {
        self.config.slow_us
    }

    /// Starts tracing one request, or returns `None` when this request
    /// is not traced (the zero-cost path).
    ///
    /// `incoming` is the wire context, if the request carried one;
    /// `anchor` is the instant the request started (first byte read), so
    /// the root span covers read + parse time retroactively.
    #[must_use]
    pub fn begin(&self, incoming: Option<TraceContext>, anchor: Instant) -> Option<RequestTrace> {
        let (trace_id, parent_id, forced) = match incoming {
            Some(ctx) => (ctx.trace_id, ctx.span_id, true),
            None => {
                if !self.enabled() {
                    return None;
                }
                let n = self.seq.fetch_add(1, Ordering::Relaxed);
                let sampled = self.config.sample_every > 0 && n.is_multiple_of(self.config.sample_every);
                if !sampled && self.config.slow_us == 0 {
                    return None;
                }
                (mix64(self.id_seed, n) | 1, 0, sampled)
            }
        };
        let root_id = mix64(
            trace_id,
            self.ids.fetch_add(1, Ordering::Relaxed) ^ self.id_seed,
        ) | 1;
        Some(RequestTrace {
            trace_id,
            parent_id,
            forced,
            node: Arc::clone(&self.node),
            root: SpanTimer::start_at("request", root_id, anchor),
            children: Vec::new(),
            next_child: 0,
        })
    }

    /// Seals a request's trace: closes the root span, decides retention
    /// (forced-or-slow), and pushes kept traces into the ring. The
    /// returned [`FinishedRequest`] always carries the spans so the
    /// caller can feed phase histograms and the slow log from the same
    /// records the ring keeps.
    pub fn finish(&self, trace: RequestTrace) -> FinishedRequest {
        let RequestTrace {
            trace_id,
            parent_id,
            forced,
            node,
            root,
            mut children,
            ..
        } = trace;
        let root_span_id = root.span_id();
        let record = root.finish(trace_id, parent_id, node);
        let total_us = record.dur_us;
        let mut spans = Vec::with_capacity(1 + children.len());
        spans.push(record);
        spans.append(&mut children);
        let slow = self.config.slow_us > 0 && total_us >= self.config.slow_us;
        let retained = forced || slow;
        if retained {
            self.push(TraceEntry {
                trace_id,
                slow,
                spans: spans.clone(),
            });
        }
        FinishedRequest {
            trace_id,
            root_span_id,
            total_us,
            slow,
            retained,
            spans,
        }
    }

    /// Pushes a finished entry into the ring, never blocking: a slot
    /// whose lock is contended drops the entry instead.
    fn push(&self, entry: TraceEntry) {
        let cursor = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = usize::try_from(cursor).unwrap_or(0) % self.slots.len();
        match self.slots[slot].try_lock() {
            Ok(mut guard) => {
                *guard = Some(entry);
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Traces kept in the ring, oldest slot first. Clones the entries;
    /// concurrent writers skip (and count) rather than wait.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        self.slots
            .iter()
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone()
            })
            .collect()
    }

    /// Traces successfully written to the ring so far.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces dropped on slot contention.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The ring as JSONL: one JSON object per line, one line per kept
    /// trace fragment (shape in [`TraceEntry::to_json`]).
    #[must_use]
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in self.snapshot() {
            out.push_str(&entry.to_json().render());
            out.push('\n');
        }
        out
    }

    /// The ring in Chrome trace-event format (a single JSON document,
    /// openable at `ui.perfetto.dev` or `chrome://tracing`).
    #[must_use]
    pub fn export_chrome(&self) -> String {
        chrome_trace(&self.snapshot()).render()
    }
}

/// Renders trace fragments (possibly merged from several nodes) as a
/// Chrome trace-event JSON document. Each node becomes a "process" (with
/// a `process_name` metadata record), each trace a "thread" within it,
/// and each span a complete (`ph:"X"`) event whose `ts` is the span's
/// wall-clock anchor — so spans from different nodes of one trace line
/// up on a shared timeline, within clock skew.
#[must_use]
pub fn chrome_trace(entries: &[TraceEntry]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut named_pids: Vec<u64> = Vec::new();
    for entry in entries {
        let tid = i64::try_from(entry.trace_id & 0x7fff_ffff)
            .unwrap_or(1)
            .max(1);
        for span in &entry.spans {
            let pid_raw = fnv1a(span.node.as_ref()) & 0x7fff_ffff;
            let pid = i64::try_from(pid_raw).unwrap_or(1).max(1);
            if !named_pids.contains(&pid_raw) {
                named_pids.push(pid_raw);
                events.push(Json::obj([
                    ("ph", Json::str("M")),
                    ("name", Json::str("process_name")),
                    ("pid", Json::Int(pid)),
                    ("tid", Json::Int(0)),
                    ("args", Json::obj([("name", Json::str(span.node.as_ref()))])),
                ]));
            }
            events.push(Json::obj([
                ("ph", Json::str("X")),
                ("name", Json::str(span.name)),
                ("cat", Json::str(if entry.slow { "slow" } else { "csr" })),
                ("pid", Json::Int(pid)),
                ("tid", Json::Int(tid)),
                ("ts", Json::uint(span.start_us)),
                ("dur", Json::uint(span.dur_us.max(1))),
                (
                    "args",
                    Json::obj([
                        ("trace_id", Json::str(format!("{:016x}", span.trace_id))),
                        ("span_id", Json::str(format!("{:016x}", span.span_id))),
                        ("parent_id", Json::str(format!("{:016x}", span.parent_id))),
                        (
                            "events",
                            Json::Arr(
                                span.events
                                    .iter()
                                    .map(|e| Json::str(format!("{} {}", e.name, e.detail)))
                                    .collect(),
                            ),
                        ),
                    ]),
                ),
            ]));
        }
    }
    Json::obj([("traceEvents", Json::Arr(events))])
}

/// One request's trace under construction: the open root span plus the
/// finished child spans. Built by [`Tracer::begin`], sealed by
/// [`Tracer::finish`].
#[derive(Debug)]
pub struct RequestTrace {
    trace_id: u64,
    parent_id: u64,
    forced: bool,
    node: Arc<str>,
    root: SpanTimer,
    children: Vec<SpanRecord>,
    next_child: u64,
}

impl RequestTrace {
    /// The trace id.
    #[must_use]
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The root span's id.
    #[must_use]
    pub fn root_span_id(&self) -> u64 {
        self.root.span_id()
    }

    /// A context carrying this trace's id and `parent` as the causing
    /// span — what goes on the wire when this request fans out (pass the
    /// forward span's id, so the remote root links under the hop).
    #[must_use]
    pub fn context_from(&self, parent: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: parent,
            sampled: true,
        }
    }

    /// Opens a child span (of the root) starting now.
    #[must_use]
    pub fn begin_span(&mut self, name: &'static str) -> SpanTimer {
        SpanTimer::start(name, self.child_id())
    }

    /// Opens a child span backdated to `anchor` — for phases whose start
    /// could only be captured as an [`Instant`] (e.g. inside a closure
    /// that cannot borrow the trace).
    #[must_use]
    pub fn begin_span_at(&mut self, name: &'static str, anchor: Instant) -> SpanTimer {
        SpanTimer::start_at(name, self.child_id(), anchor)
    }

    /// Records a child span that ran from `anchor` until now — for
    /// phases only discovered after the fact, like parse time measured
    /// from the request's first byte.
    pub fn add_span_since(&mut self, name: &'static str, anchor: Instant) -> u64 {
        let timer = SpanTimer::start_at(name, self.child_id(), anchor);
        self.finish_span(timer)
    }

    /// Seals a child span opened with [`RequestTrace::begin_span`] and
    /// returns its duration in microseconds (the phase histogram value).
    pub fn finish_span(&mut self, timer: SpanTimer) -> u64 {
        let record = timer.finish(self.trace_id, self.root.span_id(), Arc::clone(&self.node));
        let dur = record.dur_us;
        self.children.push(record);
        dur
    }

    /// Adds a timestamped annotation to the root span.
    pub fn event(&mut self, name: &'static str, detail: String) {
        self.root.event(name, detail);
    }

    /// Appends pre-collected events (e.g. leftovers from the thread-local
    /// collector) to the root span. A no-op for an empty batch.
    pub fn absorb_events(&mut self, events: Vec<SpanEvent>) {
        self.root.absorb_events(events);
    }

    fn child_id(&mut self) -> u64 {
        self.next_child += 1;
        mix64(self.root.span_id(), self.next_child) | 1
    }
}

/// A sealed request trace: retention already decided, spans (root first)
/// handed back for phase histograms and the slow log.
#[derive(Debug)]
pub struct FinishedRequest {
    /// The trace id.
    pub trace_id: u64,
    /// The root span's id.
    pub root_span_id: u64,
    /// Root span duration — the whole request, µs.
    pub total_us: u64,
    /// Whether the request crossed the tracer's slow threshold.
    pub slow: bool,
    /// Whether the trace was written to the ring.
    pub retained: bool,
    /// All spans, root first.
    pub spans: Vec<SpanRecord>,
}

thread_local! {
    /// The per-thread event collector; `None` means unarmed.
    static EVENTS: RefCell<Option<Vec<SpanEvent>>> = const { RefCell::new(None) };
}

/// Arms the current thread's event collector. Until [`take_events`],
/// [`emit_event`] calls on this thread accumulate. Request handlers arm
/// only for traced requests, keeping unarmed emission allocation-free.
pub fn arm_events() {
    EVENTS.with(|slot| *slot.borrow_mut() = Some(Vec::new()));
}

/// Emits an event to the collector if armed; a no-op (and the `detail`
/// closure is never called) otherwise. Middleware calls this without
/// knowing whether the current request is traced.
pub fn emit_event(name: &'static str, detail: impl FnOnce() -> String) {
    EVENTS.with(|slot| {
        if let Some(events) = slot.borrow_mut().as_mut() {
            events.push(SpanEvent {
                at_us: unix_us(),
                name,
                detail: detail(),
            });
        }
    });
}

/// Disarms the collector and returns what accumulated since
/// [`arm_events`] (empty if it was never armed).
#[must_use]
pub fn take_events() -> Vec<SpanEvent> {
    EVENTS
        .with(|slot| slot.borrow_mut().take())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_request(tracer: &Tracer, incoming: Option<TraceContext>) -> Option<FinishedRequest> {
        let mut trace = tracer.begin(incoming, Instant::now())?;
        let span = trace.begin_span("cache");
        trace.finish_span(span);
        Some(tracer.finish(trace))
    }

    #[test]
    fn disabled_tracer_does_nothing() {
        let tracer = Tracer::new("n1", TraceConfig::default());
        assert!(!tracer.enabled());
        for _ in 0..100 {
            assert!(tracer.begin(None, Instant::now()).is_none());
        }
        assert_eq!(tracer.recorded(), 0);
        assert_eq!(tracer.dropped(), 0);
        assert!(tracer.snapshot().is_empty());
        assert_eq!(tracer.export_jsonl(), "");
    }

    #[test]
    fn incoming_context_always_kept_even_when_disabled() {
        let tracer = Tracer::new("n1", TraceConfig::default());
        let ctx = TraceContext {
            trace_id: 0xabc,
            span_id: 0xdef,
            sampled: true,
        };
        let fin = run_request(&tracer, Some(ctx)).expect("incoming ctx must trace");
        assert!(fin.retained);
        assert_eq!(fin.trace_id, 0xabc);
        // The root span links under the caller's span.
        assert_eq!(fin.spans[0].parent_id, 0xdef);
        assert_eq!(fin.spans[0].name, "request");
        // The child links under the root.
        assert_eq!(fin.spans[1].parent_id, fin.spans[0].span_id);
        assert_eq!(tracer.recorded(), 1);
        let snap = tracer.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].trace_id, 0xabc);
    }

    #[test]
    fn one_in_n_sampling() {
        let tracer = Tracer::new(
            "n1",
            TraceConfig {
                sample_every: 4,
                slow_us: 0,
                capacity: 64,
            },
        );
        let kept = (0..32)
            .filter(|_| run_request(&tracer, None).is_some())
            .count();
        assert_eq!(kept, 8);
        assert_eq!(tracer.recorded(), 8);
    }

    #[test]
    fn slow_only_keeps_slow() {
        let tracer = Tracer::new(
            "n1",
            TraceConfig {
                sample_every: 0,
                slow_us: 2_000,
                capacity: 64,
            },
        );
        // Every request is traced (keep/drop decided at finish)...
        let fast = run_request(&tracer, None).expect("slow_us>0 traces everything");
        assert!(!fast.slow);
        assert!(!fast.retained);
        assert_eq!(tracer.recorded(), 0);
        // ...and a slow one is kept.
        let mut trace = tracer.begin(None, Instant::now()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(3));
        trace.event("note", "slept".to_owned());
        let fin = tracer.finish(trace);
        assert!(fin.slow, "total {}", fin.total_us);
        assert!(fin.retained);
        assert_eq!(tracer.recorded(), 1);
        assert!(tracer.snapshot()[0].slow);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let tracer = Tracer::new(
            "n1",
            TraceConfig {
                sample_every: 1,
                slow_us: 0,
                capacity: 4,
            },
        );
        for _ in 0..10 {
            run_request(&tracer, None).unwrap();
        }
        assert_eq!(tracer.recorded(), 10);
        assert_eq!(tracer.snapshot().len(), 4);
    }

    #[test]
    fn jsonl_lines_parse_and_chrome_export_is_one_document() {
        let tracer = Tracer::new(
            "127.0.0.1:11311",
            TraceConfig {
                sample_every: 1,
                slow_us: 0,
                capacity: 8,
            },
        );
        for _ in 0..3 {
            run_request(&tracer, None).unwrap();
        }
        let jsonl = tracer.export_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            let v = Json::parse(line).expect("each JSONL line parses");
            assert_eq!(v.get("node").unwrap().as_str(), Some("127.0.0.1:11311"));
            assert!(v.get("spans").unwrap().as_arr().unwrap().len() >= 2);
        }
        let chrome = Json::parse(&tracer.export_chrome()).expect("chrome export parses");
        let events = chrome.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 traces × 2 spans + 1 process_name metadata record.
        assert_eq!(events.len(), 7);
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("M")));
    }

    #[test]
    fn event_collector_is_inert_until_armed() {
        let mut called = false;
        emit_event("retry", || {
            called = true;
            String::new()
        });
        assert!(!called, "unarmed emit must not build detail");
        assert!(take_events().is_empty());

        arm_events();
        emit_event("retry", || "attempt 1".to_owned());
        emit_event("deadline", || "800ms".to_owned());
        let events = take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "retry");
        assert_eq!(events[0].detail, "attempt 1");
        // Taking disarms.
        emit_event("retry", || "attempt 2".to_owned());
        assert!(take_events().is_empty());
    }

    #[test]
    fn distinct_ids_per_trace_and_span() {
        let tracer = Tracer::new(
            "n1",
            TraceConfig {
                sample_every: 1,
                slow_us: 0,
                capacity: 64,
            },
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            let fin = run_request(&tracer, None).unwrap();
            assert!(seen.insert(fin.trace_id), "trace ids must not repeat");
            let mut span_ids = std::collections::HashSet::new();
            for s in &fin.spans {
                assert!(s.span_id != 0);
                assert!(span_ids.insert(s.span_id), "span ids unique in trace");
            }
        }
    }
}
