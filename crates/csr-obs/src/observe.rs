//! The policy decision-event layer.
//!
//! An [`Observer`] receives the individual decisions a replacement policy
//! makes — hits, misses, evictions, reservations, depreciations, ETD hits,
//! ACL automaton flips — as they happen. The `csr` policy cores are generic
//! over an observer that defaults to [`NopObserver`], so an unobserved core
//! monomorphizes to exactly the pre-observability code; attaching an
//! [`EventTracer`] (bounded ring buffer), a [`CountingObserver`] (per-kind
//! totals), or a [`MetricsObserver`] (registry counters) turns the stream
//! on without touching the policy logic.
//!
//! All methods take `&self` so one observer can be shared — `Arc`-cloned —
//! across every set of a simulated cache or every shard of a concurrent
//! one; implementations are responsible for their own synchronization.

use crate::metrics::Counter;
use crate::registry::Registry;
use cache_sim::{BlockAddr, Cost};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Receiver of replacement-policy decision events.
///
/// Every method has a no-op default, so an implementation overrides only
/// the events it cares about. Events fire at exactly the points where the
/// policies' own statistics counters increment, so for any reference
/// stream the per-kind event counts equal the corresponding
/// `BclStats`/`DclStats`/`AclStats`/`CacheStats` counters.
pub trait Observer {
    /// An access hit `block` (cost as stored at fill time).
    fn on_hit(&self, block: BlockAddr, cost: Cost) {
        let _ = (block, cost);
    }

    /// An access to `block` missed.
    fn on_miss(&self, block: BlockAddr) {
        let _ = block;
    }

    /// `block` was selected for eviction (any victim, LRU or not).
    fn on_evict(&self, block: BlockAddr, cost: Cost) {
        let _ = (block, cost);
    }

    /// A reservation: the LRU block `reserved` was spared and the cheaper
    /// `victim` (cost `victim_cost`) evicted in its place. For GreedyDual
    /// this reports any non-LRU victim selection (`reserved` is the LRU
    /// block it spared).
    fn on_reserve(&self, reserved: BlockAddr, victim: BlockAddr, victim_cost: Cost) {
        let _ = (reserved, victim, victim_cost);
    }

    /// The reserved block's depreciated cost `Acost` dropped by `amount`
    /// to `remaining`.
    fn on_depreciate(&self, amount: u64, remaining: u64) {
        let _ = (amount, remaining);
    }

    /// A miss on `block` hit the Extended Tag Directory: a block displaced
    /// by a reservation was re-referenced (DCL/ACL) or a watch-mode entry
    /// fired (ACL).
    fn on_etd_hit(&self, block: BlockAddr, cost: Cost) {
        let _ = (block, cost);
    }

    /// The ACL automaton crossed the enabled/disabled boundary.
    fn on_automaton_flip(&self, enabled: bool) {
        let _ = enabled;
    }

    /// An online policy selector hot-flipped a replacement region's live
    /// core from policy `from` to policy `to` (the generalization of the
    /// ACL automaton flip: any policy, not just reservations on/off).
    fn on_policy_flip(&self, from: &'static str, to: &'static str) {
        let _ = (from, to);
    }
}

/// The default observer: every event is a no-op that the compiler removes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopObserver;

impl Observer for NopObserver {}

impl<O: Observer + ?Sized> Observer for Arc<O> {
    fn on_hit(&self, block: BlockAddr, cost: Cost) {
        (**self).on_hit(block, cost);
    }
    fn on_miss(&self, block: BlockAddr) {
        (**self).on_miss(block);
    }
    fn on_evict(&self, block: BlockAddr, cost: Cost) {
        (**self).on_evict(block, cost);
    }
    fn on_reserve(&self, reserved: BlockAddr, victim: BlockAddr, victim_cost: Cost) {
        (**self).on_reserve(reserved, victim, victim_cost);
    }
    fn on_depreciate(&self, amount: u64, remaining: u64) {
        (**self).on_depreciate(amount, remaining);
    }
    fn on_etd_hit(&self, block: BlockAddr, cost: Cost) {
        (**self).on_etd_hit(block, cost);
    }
    fn on_automaton_flip(&self, enabled: bool) {
        (**self).on_automaton_flip(enabled);
    }
    fn on_policy_flip(&self, from: &'static str, to: &'static str) {
        (**self).on_policy_flip(from, to);
    }
}

/// Fan-out: both observers receive every event (compose freely:
/// `((a, b), c)`).
impl<A: Observer, B: Observer> Observer for (A, B) {
    fn on_hit(&self, block: BlockAddr, cost: Cost) {
        self.0.on_hit(block, cost);
        self.1.on_hit(block, cost);
    }
    fn on_miss(&self, block: BlockAddr) {
        self.0.on_miss(block);
        self.1.on_miss(block);
    }
    fn on_evict(&self, block: BlockAddr, cost: Cost) {
        self.0.on_evict(block, cost);
        self.1.on_evict(block, cost);
    }
    fn on_reserve(&self, reserved: BlockAddr, victim: BlockAddr, victim_cost: Cost) {
        self.0.on_reserve(reserved, victim, victim_cost);
        self.1.on_reserve(reserved, victim, victim_cost);
    }
    fn on_depreciate(&self, amount: u64, remaining: u64) {
        self.0.on_depreciate(amount, remaining);
        self.1.on_depreciate(amount, remaining);
    }
    fn on_etd_hit(&self, block: BlockAddr, cost: Cost) {
        self.0.on_etd_hit(block, cost);
        self.1.on_etd_hit(block, cost);
    }
    fn on_automaton_flip(&self, enabled: bool) {
        self.0.on_automaton_flip(enabled);
        self.1.on_automaton_flip(enabled);
    }
    fn on_policy_flip(&self, from: &'static str, to: &'static str) {
        self.0.on_policy_flip(from, to);
        self.1.on_policy_flip(from, to);
    }
}

/// One recorded policy decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionEvent {
    /// Hit on a resident block.
    Hit {
        /// The block that hit.
        block: BlockAddr,
        /// Its fill-time cost.
        cost: Cost,
    },
    /// Miss.
    Miss {
        /// The missing block.
        block: BlockAddr,
    },
    /// Victim selection.
    Evict {
        /// The evicted block.
        block: BlockAddr,
        /// Its fill-time cost.
        cost: Cost,
    },
    /// Reservation of the LRU block.
    Reserve {
        /// The spared LRU block.
        reserved: BlockAddr,
        /// The cheaper block evicted in its place.
        victim: BlockAddr,
        /// The victim's cost.
        victim_cost: Cost,
    },
    /// Depreciation of the reserved block's `Acost`.
    Depreciate {
        /// How much was subtracted.
        amount: u64,
        /// The remaining `Acost`.
        remaining: u64,
    },
    /// A miss matched an ETD entry.
    EtdHit {
        /// The re-referenced block.
        block: BlockAddr,
        /// The cost it was displaced with.
        cost: Cost,
    },
    /// The ACL automaton flipped.
    AutomatonFlip {
        /// Whether reservations are now enabled.
        enabled: bool,
    },
    /// An online selector hot-flipped a region's live policy core.
    PolicyFlip {
        /// The policy that was live before the flip.
        from: &'static str,
        /// The policy now live.
        to: &'static str,
    },
}

impl DecisionEvent {
    /// A short kind label ("hit", "reserve", ...).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DecisionEvent::Hit { .. } => "hit",
            DecisionEvent::Miss { .. } => "miss",
            DecisionEvent::Evict { .. } => "evict",
            DecisionEvent::Reserve { .. } => "reserve",
            DecisionEvent::Depreciate { .. } => "depreciate",
            DecisionEvent::EtdHit { .. } => "etd_hit",
            DecisionEvent::AutomatonFlip { .. } => "automaton_flip",
            DecisionEvent::PolicyFlip { .. } => "policy_flip",
        }
    }
}

/// A [`DecisionEvent`] plus its global sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedEvent {
    /// 0-based position in the event stream (gaps never occur; dropped
    /// events are the *oldest*, so `seq` of retained events stays dense).
    pub seq: u64,
    /// The event.
    pub event: DecisionEvent,
}

struct TracerState {
    buf: VecDeque<TracedEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring-buffer [`Observer`]: keeps the most recent `capacity`
/// events and counts how many older ones were dropped.
///
/// Wrap it in an `Arc` to share across sets/shards:
///
/// ```
/// use csr_obs::EventTracer;
/// use std::sync::Arc;
///
/// let tracer = Arc::new(EventTracer::new(1024));
/// // ... attach Arc::clone(&tracer) to a policy core, run a workload ...
/// for ev in tracer.events() {
///     println!("{:>6}  {:?}", ev.seq, ev.event);
/// }
/// ```
pub struct EventTracer {
    state: Mutex<TracerState>,
    capacity: usize,
}

impl EventTracer {
    /// A tracer retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        EventTracer {
            state: Mutex::new(TracerState {
                buf: VecDeque::with_capacity(capacity),
                next_seq: 0,
                dropped: 0,
            }),
            capacity,
        }
    }

    fn push(&self, event: DecisionEvent) {
        let mut st = self.state.lock().expect("tracer lock poisoned");
        if st.buf.len() == self.capacity {
            st.buf.pop_front();
            st.dropped += 1;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.buf.push_back(TracedEvent { seq, event });
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TracedEvent> {
        self.state
            .lock()
            .expect("tracer lock poisoned")
            .buf
            .iter()
            .copied()
            .collect()
    }

    /// Total events observed (retained + dropped).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.state.lock().expect("tracer lock poisoned").next_seq
    }

    /// Events evicted from the ring to make room.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("tracer lock poisoned").dropped
    }

    /// Maximum retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Observer for EventTracer {
    fn on_hit(&self, block: BlockAddr, cost: Cost) {
        self.push(DecisionEvent::Hit { block, cost });
    }
    fn on_miss(&self, block: BlockAddr) {
        self.push(DecisionEvent::Miss { block });
    }
    fn on_evict(&self, block: BlockAddr, cost: Cost) {
        self.push(DecisionEvent::Evict { block, cost });
    }
    fn on_reserve(&self, reserved: BlockAddr, victim: BlockAddr, victim_cost: Cost) {
        self.push(DecisionEvent::Reserve {
            reserved,
            victim,
            victim_cost,
        });
    }
    fn on_depreciate(&self, amount: u64, remaining: u64) {
        self.push(DecisionEvent::Depreciate { amount, remaining });
    }
    fn on_etd_hit(&self, block: BlockAddr, cost: Cost) {
        self.push(DecisionEvent::EtdHit { block, cost });
    }
    fn on_automaton_flip(&self, enabled: bool) {
        self.push(DecisionEvent::AutomatonFlip { enabled });
    }
    fn on_policy_flip(&self, from: &'static str, to: &'static str) {
        self.push(DecisionEvent::PolicyFlip { from, to });
    }
}

/// Plain per-kind event totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// `on_hit` deliveries.
    pub hits: u64,
    /// `on_miss` deliveries.
    pub misses: u64,
    /// `on_evict` deliveries.
    pub evictions: u64,
    /// `on_reserve` deliveries.
    pub reservations: u64,
    /// `on_depreciate` deliveries.
    pub depreciations: u64,
    /// `on_etd_hit` deliveries.
    pub etd_hits: u64,
    /// `on_automaton_flip` deliveries.
    pub automaton_flips: u64,
    /// `on_policy_flip` deliveries.
    pub policy_flips: u64,
}

/// An [`Observer`] that only counts events, per kind — the cheapest way to
/// check a run's decision profile (and what the equivalence tests compare
/// against the policies' own statistics).
#[derive(Debug, Default)]
pub struct CountingObserver {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    reservations: AtomicU64,
    depreciations: AtomicU64,
    etd_hits: AtomicU64,
    automaton_flips: AtomicU64,
    policy_flips: AtomicU64,
}

impl CountingObserver {
    /// Creates a counting observer at zero.
    #[must_use]
    pub fn new() -> Self {
        CountingObserver::default()
    }

    /// The current totals.
    #[must_use]
    pub fn counts(&self) -> EventCounts {
        EventCounts {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            reservations: self.reservations.load(Ordering::Relaxed),
            depreciations: self.depreciations.load(Ordering::Relaxed),
            etd_hits: self.etd_hits.load(Ordering::Relaxed),
            automaton_flips: self.automaton_flips.load(Ordering::Relaxed),
            policy_flips: self.policy_flips.load(Ordering::Relaxed),
        }
    }
}

impl Observer for CountingObserver {
    fn on_hit(&self, _block: BlockAddr, _cost: Cost) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    fn on_miss(&self, _block: BlockAddr) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
    fn on_evict(&self, _block: BlockAddr, _cost: Cost) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }
    fn on_reserve(&self, _reserved: BlockAddr, _victim: BlockAddr, _victim_cost: Cost) {
        self.reservations.fetch_add(1, Ordering::Relaxed);
    }
    fn on_depreciate(&self, _amount: u64, _remaining: u64) {
        self.depreciations.fetch_add(1, Ordering::Relaxed);
    }
    fn on_etd_hit(&self, _block: BlockAddr, _cost: Cost) {
        self.etd_hits.fetch_add(1, Ordering::Relaxed);
    }
    fn on_automaton_flip(&self, _enabled: bool) {
        self.automaton_flips.fetch_add(1, Ordering::Relaxed);
    }
    fn on_policy_flip(&self, _from: &'static str, _to: &'static str) {
        self.policy_flips.fetch_add(1, Ordering::Relaxed);
    }
}

/// An [`Observer`] that feeds a [`Registry`]: one
/// `csr_policy_events_total{policy=..., event=...}` counter per event kind.
pub struct MetricsObserver {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    reservations: Arc<Counter>,
    depreciations: Arc<Counter>,
    etd_hits: Arc<Counter>,
    automaton_flips: Arc<Counter>,
    policy_flips: Arc<Counter>,
}

impl MetricsObserver {
    /// The family name registered by [`MetricsObserver::new`].
    pub const FAMILY: &'static str = "csr_policy_events_total";

    /// Registers the event counters for `policy` (the label value) in
    /// `registry`.
    #[must_use]
    pub fn new(registry: &Registry, policy: &str) -> Self {
        let help = "Replacement-policy decision events by kind";
        let c = |event: &str| {
            registry.counter(Self::FAMILY, help, &[("policy", policy), ("event", event)])
        };
        MetricsObserver {
            hits: c("hit"),
            misses: c("miss"),
            evictions: c("evict"),
            reservations: c("reserve"),
            depreciations: c("depreciate"),
            etd_hits: c("etd_hit"),
            automaton_flips: c("automaton_flip"),
            policy_flips: c("policy_flip"),
        }
    }
}

impl Observer for MetricsObserver {
    fn on_hit(&self, _block: BlockAddr, _cost: Cost) {
        self.hits.inc();
    }
    fn on_miss(&self, _block: BlockAddr) {
        self.misses.inc();
    }
    fn on_evict(&self, _block: BlockAddr, _cost: Cost) {
        self.evictions.inc();
    }
    fn on_reserve(&self, _reserved: BlockAddr, _victim: BlockAddr, _victim_cost: Cost) {
        self.reservations.inc();
    }
    fn on_depreciate(&self, _amount: u64, _remaining: u64) {
        self.depreciations.inc();
    }
    fn on_etd_hit(&self, _block: BlockAddr, _cost: Cost) {
        self.etd_hits.inc();
    }
    fn on_automaton_flip(&self, _enabled: bool) {
        self.automaton_flips.inc();
    }
    fn on_policy_flip(&self, _from: &'static str, _to: &'static str) {
        self.policy_flips.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn nop_observer_does_nothing() {
        let o = NopObserver;
        o.on_hit(b(1), Cost(2));
        o.on_miss(b(1));
        o.on_evict(b(1), Cost(2));
        o.on_reserve(b(1), b(2), Cost(3));
        o.on_depreciate(4, 2);
        o.on_etd_hit(b(1), Cost(2));
        o.on_automaton_flip(true);
        o.on_policy_flip("LRU", "S3-FIFO");
    }

    #[test]
    fn tracer_keeps_recent_events_with_dense_seq() {
        let t = EventTracer::new(3);
        for i in 0..5u64 {
            t.on_miss(b(i));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(t.total(), 5);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.capacity(), 3);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        assert_eq!(evs[0].event, DecisionEvent::Miss { block: b(2) });
    }

    #[test]
    fn event_kinds_are_distinct() {
        let t = EventTracer::new(16);
        t.on_hit(b(1), Cost(2));
        t.on_miss(b(1));
        t.on_evict(b(1), Cost(2));
        t.on_reserve(b(1), b(2), Cost(3));
        t.on_depreciate(4, 2);
        t.on_etd_hit(b(1), Cost(2));
        t.on_automaton_flip(true);
        t.on_policy_flip("DCL", "CAMP");
        let kinds: Vec<&str> = t.events().iter().map(|e| e.event.kind()).collect();
        assert_eq!(
            kinds,
            [
                "hit",
                "miss",
                "evict",
                "reserve",
                "depreciate",
                "etd_hit",
                "automaton_flip",
                "policy_flip"
            ]
        );
    }

    #[test]
    fn counting_observer_counts_and_arc_delegates() {
        let c = Arc::new(CountingObserver::new());
        let via_arc: &dyn Observer = &c;
        via_arc.on_hit(b(1), Cost(1));
        via_arc.on_miss(b(2));
        via_arc.on_miss(b(3));
        via_arc.on_evict(b(2), Cost(1));
        via_arc.on_reserve(b(1), b(2), Cost(1));
        via_arc.on_depreciate(2, 0);
        via_arc.on_etd_hit(b(2), Cost(1));
        via_arc.on_automaton_flip(false);
        via_arc.on_policy_flip("GD", "SLRU");
        let counts = c.counts();
        assert_eq!(counts.hits, 1);
        assert_eq!(counts.misses, 2);
        assert_eq!(counts.evictions, 1);
        assert_eq!(counts.reservations, 1);
        assert_eq!(counts.depreciations, 1);
        assert_eq!(counts.etd_hits, 1);
        assert_eq!(counts.automaton_flips, 1);
        assert_eq!(counts.policy_flips, 1);
    }

    #[test]
    fn pair_observer_fans_out() {
        let a = Arc::new(CountingObserver::new());
        let t = Arc::new(EventTracer::new(8));
        let pair = (Arc::clone(&a), Arc::clone(&t));
        pair.on_hit(b(1), Cost(5));
        pair.on_reserve(b(1), b(2), Cost(1));
        pair.on_miss(b(9));
        pair.on_evict(b(3), Cost(1));
        pair.on_depreciate(1, 0);
        pair.on_etd_hit(b(4), Cost(2));
        pair.on_automaton_flip(true);
        pair.on_policy_flip("LRU", "GDSF");
        assert_eq!(a.counts().hits, 1);
        assert_eq!(a.counts().reservations, 1);
        assert_eq!(a.counts().policy_flips, 1);
        assert_eq!(t.total(), 8);
    }

    #[test]
    fn metrics_observer_feeds_registry() {
        let r = Registry::new();
        let m = MetricsObserver::new(&r, "DCL");
        m.on_hit(b(1), Cost(1));
        m.on_miss(b(1));
        m.on_evict(b(1), Cost(1));
        m.on_reserve(b(1), b(2), Cost(1));
        m.on_reserve(b(1), b(3), Cost(1));
        m.on_depreciate(1, 1);
        m.on_etd_hit(b(1), Cost(1));
        m.on_automaton_flip(true);
        m.on_policy_flip("DCL", "S3-FIFO");
        let snap = r.snapshot();
        let fam = snap.family(MetricsObserver::FAMILY).unwrap();
        let count_of = |event: &str| {
            fam.sample_with(&[("policy", "DCL"), ("event", event)])
                .and_then(|s| s.value.as_counter())
                .unwrap()
        };
        assert_eq!(count_of("hit"), 1);
        assert_eq!(count_of("reserve"), 2);
        assert_eq!(count_of("automaton_flip"), 1);
        assert_eq!(count_of("policy_flip"), 1);
    }
}
