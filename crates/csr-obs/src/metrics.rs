//! The zero-dependency metrics primitives: [`Counter`], [`Gauge`], and a
//! lock-free log-bucketed [`Histogram`].
//!
//! All three are plain atomics: recording is wait-free, never allocates,
//! and is safe from any number of threads. Snapshots are taken with
//! relaxed loads — each number is exact, but numbers loaded at different
//! instants may be skewed against each other by in-flight operations
//! (the same caveat `csr-cache` documents for its counters).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power of two: 2^3 = 8, bounding the relative error of
/// any reported quantile by 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Octave 0 holds the exact values `0..SUB`; octaves `1..=61` cover the
/// rest of the `u64` range with `SUB` buckets each.
pub(crate) const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB as usize) + SUB as usize;

/// The bucket index of `v` (log-bucketed with linear sub-buckets).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let octave = msb - u64::from(SUB_BITS) + 1;
        let sub = (v >> (msb - u64::from(SUB_BITS))) - SUB;
        (octave * SUB + sub) as usize
    }
}

/// The smallest value mapping to bucket `idx`.
#[inline]
fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let octave = idx / SUB;
        let sub = idx % SUB;
        (SUB + sub) << (octave - 1)
    }
}

/// The largest value mapping to bucket `idx` (inclusive upper bound). The
/// top bucket's bound is `u64::MAX` — its nominal exclusive bound, 2^64,
/// does not fit in a `u64`.
#[inline]
fn bucket_upper_incl(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let octave = idx / SUB;
        let sub = idx % SUB;
        let base = SUB + sub + 1;
        let shift = (octave - 1) as u32;
        if shift > base.leading_zeros() {
            u64::MAX
        } else {
            (base << shift) - 1
        }
    }
}

/// A lock-free histogram over `u64` values with logarithmic buckets.
///
/// Values are binned into 8 linear sub-buckets per power of two, so any
/// reported quantile is within 12.5% of the true order statistic while the
/// whole `u64` range fits in a fixed 496-bucket table. Recording is a
/// relaxed `fetch_add` (plus a `fetch_max` for the running maximum);
/// histograms from different shards/threads merge by bucket-wise addition.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Clears every bucket, the count, the sum and the maximum back to
    /// zero — for interval-based reporting, where each reporting period
    /// starts from an empty histogram instead of accumulating forever.
    ///
    /// Concurrent [`record`](Self::record)s may land on either side of a
    /// reset (an observation's bucket increment and its count increment
    /// can even straddle it); an interval report racing live traffic is
    /// off by at most the handful of in-flight operations, the same
    /// caveat every snapshot in this crate carries.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Adds every observation of `other` into `self` (bucket-wise).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], with quantile accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the midpoint of the bucket
    /// holding the `ceil(q * count)`-th smallest observation, clamped to
    /// the recorded maximum. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = bucket_lower(idx);
                let mid = lo + (bucket_upper_incl(idx) - lo) / 2;
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](Self::quantile)).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Accumulates `other` into `self` (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(inclusive_upper_bound, count)` pairs in
    /// ascending order — the form Prometheus-style exporters consume.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_upper_incl(idx), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value maps into a bucket whose [lower, upper) contains it,
        // and bucket boundaries tile the u64 range without gaps.
        for v in (0..2048u64).chain([1 << 20, (1 << 20) + 7, u64::MAX / 3, u64::MAX - 1, u64::MAX])
        {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
            assert!(bucket_lower(idx) <= v, "lower({idx}) > {v}");
            assert!(v <= bucket_upper_incl(idx), "upper({idx}) < {v}");
        }
        for idx in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                bucket_upper_incl(idx) + 1,
                bucket_lower(idx + 1),
                "gap between buckets {idx} and {}",
                idx + 1
            );
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_incl(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_counts_sum_max() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1106);
        assert_eq!(s.max(), 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Octave 0 is value-exact: the 4th smallest of 0..=7 is 3.
        assert_eq!(s.quantile(0.5), 3);
        assert_eq!(s.max(), 7);
    }

    #[test]
    fn quantiles_clamp_to_max() {
        let h = Histogram::new();
        h.record(1000);
        let s = h.snapshot();
        // A single observation: every quantile reports the same bucket
        // midpoint, within the 12.5% bound and never above the max.
        assert_eq!(s.p50(), s.p99());
        assert!(s.p50() <= s.max());
        assert!(s.p50().abs_diff(1000) <= 1000 / 8, "p50 = {}", s.p50());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count(), s.sum(), s.max(), s.p50()), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
        assert!(s.nonzero_buckets().is_empty());
        assert_eq!(s, HistogramSnapshot::empty());
    }

    #[test]
    fn reset_returns_to_the_empty_state() {
        let h = Histogram::new();
        for v in [3u64, 77, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::empty());
        // The histogram stays usable after a reset.
        h.record(9);
        let s = h.snapshot();
        assert_eq!((s.count(), s.sum(), s.max()), (1, 9, 9));
    }

    #[test]
    fn merge_from_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * 37);
            combined.record(v * 37);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), combined.snapshot());
        let mut sa = Histogram::new().snapshot();
        sa.merge(&combined.snapshot());
        assert_eq!(sa, combined.snapshot());
    }
}
