//! Span primitives for `csr-trace` (see [`crate::trace`]).
//!
//! A *span* is one timed phase of one request — parse, cache lookup,
//! origin fetch, forward hop — identified by a 64-bit id and linked to
//! its parent. Spans carry two clocks on purpose:
//!
//! * a **wall-clock anchor** (`start_us`, microseconds since the Unix
//!   epoch) so spans emitted by *different nodes* of a cluster line up
//!   on one timeline (within clock skew) when a trace is assembled;
//! * a **monotonic duration** (`dur_us`, measured with
//!   [`std::time::Instant`]) so the reported latency is immune to
//!   wall-clock steps.
//!
//! The wire form of a context is `"<trace_id>.<span_id>"`, both as
//! exactly sixteen lowercase hex digits — fixed-width so the protocol
//! line length stays bounded (see `PROTOCOL.md` § Tracing).

use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Microseconds since the Unix epoch, right now.
#[must_use]
pub fn unix_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

/// The propagated identity of a trace: which trace a request belongs to
/// and which span is its parent on the caller's side.
///
/// This is what travels on the wire as the optional `TRACE` token
/// (`GET <key> TRACE <trace_id>.<span_id>`): the receiving node starts
/// its own root span with `span_id` as the parent, joining the caller's
/// trace instead of starting a fresh one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this request belongs to. Never zero.
    pub trace_id: u64,
    /// The caller-side span that caused this request. Never zero.
    pub span_id: u64,
    /// Whether the originator decided to keep this trace. A context
    /// parsed off the wire is always sampled — a caller only spends the
    /// token bytes on traces it intends to keep.
    pub sampled: bool,
}

impl TraceContext {
    /// Renders the wire form: `<trace_id>.<span_id>`, each as sixteen
    /// lowercase hex digits (33 bytes total).
    #[must_use]
    pub fn render(&self) -> String {
        format!("{:016x}.{:016x}", self.trace_id, self.span_id)
    }

    /// Parses the wire form. Returns `None` unless the input is exactly
    /// two sixteen-digit lowercase hex fields joined by `.`, neither
    /// zero (zero ids are reserved as "absent").
    #[must_use]
    pub fn parse(s: &str) -> Option<TraceContext> {
        let (t, p) = s.split_once('.')?;
        if t.len() != 16 || p.len() != 16 {
            return None;
        }
        if !t
            .bytes()
            .chain(p.bytes())
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        let trace_id = u64::from_str_radix(t, 16).ok()?;
        let span_id = u64::from_str_radix(p, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            sampled: true,
        })
    }
}

/// A timestamped annotation inside a span — a retry attempt, a breaker
/// fail-fast, a deadline expiry. Events are how the resilience stack
/// shows up in a trace without getting spans of its own.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Microseconds since the Unix epoch when the event fired.
    pub at_us: u64,
    /// The event kind (`"retry"`, `"breaker_open"`, `"deadline"`, …).
    pub name: &'static str,
    /// Free-form detail (attempt number, error text, …).
    pub detail: String,
}

/// One finished span: a named, timed phase of a request on one node.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the trace).
    pub span_id: u64,
    /// The parent span's id; zero for a root with no parent.
    pub parent_id: u64,
    /// The phase name (`"request"`, `"parse"`, `"cache"`, `"origin"`,
    /// `"forward"`, `"stale"`).
    pub name: &'static str,
    /// The emitting node's id (its listen address in csr-serve).
    pub node: Arc<str>,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub start_us: u64,
    /// Monotonic duration in microseconds.
    pub dur_us: u64,
    /// Annotations that fired inside this span.
    pub events: Vec<SpanEvent>,
}

impl SpanRecord {
    /// The span as a JSON object (ids as fixed-width hex strings, the
    /// same encoding the wire uses; a zero `parent_id` renders `null`).
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        Json::obj([
            ("span_id", Json::str(format!("{:016x}", self.span_id))),
            (
                "parent_id",
                if self.parent_id == 0 {
                    Json::Null
                } else {
                    Json::str(format!("{:016x}", self.parent_id))
                },
            ),
            ("name", Json::str(self.name)),
            ("node", Json::str(self.node.as_ref())),
            ("start_us", Json::uint(self.start_us)),
            ("dur_us", Json::uint(self.dur_us)),
            (
                "events",
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("at_us", Json::uint(e.at_us)),
                                ("name", Json::str(e.name)),
                                ("detail", Json::str(e.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// An open (still running) span: ids plus both clocks, accumulating
/// events until [`crate::trace::RequestTrace::finish_span`] seals it
/// into a [`SpanRecord`].
#[derive(Debug)]
pub struct SpanTimer {
    pub(crate) name: &'static str,
    pub(crate) span_id: u64,
    pub(crate) start_us: u64,
    pub(crate) started: Instant,
    pub(crate) events: Vec<SpanEvent>,
}

impl SpanTimer {
    /// Opens a span starting now.
    #[must_use]
    pub fn start(name: &'static str, span_id: u64) -> SpanTimer {
        SpanTimer {
            name,
            span_id,
            start_us: unix_us(),
            started: Instant::now(),
            events: Vec::new(),
        }
    }

    /// Opens a span retroactively anchored at `anchor` (an instant that
    /// was captured earlier, e.g. the first byte of a request). The
    /// wall-clock start is back-dated by the same amount.
    #[must_use]
    pub fn start_at(name: &'static str, span_id: u64, anchor: Instant) -> SpanTimer {
        let behind = u64::try_from(anchor.elapsed().as_micros()).unwrap_or(u64::MAX);
        SpanTimer {
            name,
            span_id,
            start_us: unix_us().saturating_sub(behind),
            started: anchor,
            events: Vec::new(),
        }
    }

    /// This span's id (the parent id for anything it causes).
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// Microseconds elapsed since the span opened.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Adds a timestamped annotation.
    pub fn event(&mut self, name: &'static str, detail: String) {
        self.events.push(SpanEvent {
            at_us: unix_us(),
            name,
            detail,
        });
    }

    /// Appends pre-built events (e.g. drained from the thread-local
    /// collector after an instrumented origin fetch).
    pub fn absorb_events(&mut self, events: Vec<SpanEvent>) {
        if self.events.is_empty() {
            self.events = events;
        } else {
            self.events.extend(events);
        }
    }

    /// Seals the span into a record.
    #[must_use]
    pub fn finish(self, trace_id: u64, parent_id: u64, node: Arc<str>) -> SpanRecord {
        let dur_us = self.elapsed_us();
        SpanRecord {
            trace_id,
            span_id: self.span_id,
            parent_id,
            name: self.name,
            node,
            start_us: self.start_us,
            dur_us,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_round_trips() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef,
            span_id: 0xfedc_ba98_7654_3210,
            sampled: true,
        };
        let wire = ctx.render();
        assert_eq!(wire, "0123456789abcdef.fedcba9876543210");
        assert_eq!(wire.len(), 33);
        assert_eq!(TraceContext::parse(&wire), Some(ctx));
    }

    #[test]
    fn context_rejects_malformed() {
        for bad in [
            "",
            "0123456789abcdef",                   // no span half
            "0123456789abcdef.",                  // empty span half
            "123.456",                            // not fixed-width
            "0123456789abcdef.fedcba987654321g",  // non-hex
            "0123456789ABCDEF.fedcba9876543210",  // uppercase
            "0000000000000000.fedcba9876543210",  // zero trace id
            "0123456789abcdef.0000000000000000",  // zero span id
            "0123456789abcdef.fedcba9876543210x", // trailing junk
        ] {
            assert!(TraceContext::parse(bad).is_none(), "{bad:?} must fail");
        }
    }

    #[test]
    fn timer_backdates_anchor() {
        let anchor = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let t = SpanTimer::start_at("parse", 1, anchor);
        let rec = t.finish(7, 0, Arc::from("n1"));
        assert!(rec.dur_us >= 5_000, "dur {}", rec.dur_us);
        // The back-dated wall clock start sits before "now".
        assert!(rec.start_us <= unix_us());
    }

    #[test]
    fn span_json_shape() {
        let mut t = SpanTimer::start("origin", 0x2a);
        t.event("retry", "attempt 1".to_owned());
        let rec = t.finish(0x1, 0x9, Arc::from("127.0.0.1:1"));
        let j = rec.to_json();
        assert_eq!(j.get("span_id").unwrap().as_str(), Some("000000000000002a"));
        assert_eq!(
            j.get("parent_id").unwrap().as_str(),
            Some("0000000000000009")
        );
        assert_eq!(j.get("name").unwrap().as_str(), Some("origin"));
        let events = j.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("retry"));
        // Root spans render a null parent.
        let root = SpanTimer::start("request", 0x3).finish(0x1, 0, Arc::from("n"));
        assert_eq!(root.to_json().get("parent_id"), Some(&crate::Json::Null));
    }
}
