//! Asserts the tentpole's zero-cost claim mechanically: with tracing
//! disabled, the per-request tracer entry points perform **zero heap
//! allocations**. A counting wrapper around the system allocator makes
//! "no allocation" a hard test failure instead of a code-review hope.
//!
//! This lives in an integration test (its own crate) because the library
//! itself is `#![forbid(unsafe_code)]` and implementing `GlobalAlloc`
//! requires `unsafe`; the trick stays quarantined here.

use csr_obs::trace::{arm_events, emit_event, take_events};
use csr_obs::{TraceConfig, Tracer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_allocates_nothing_per_request() {
    // Construction may allocate (the ring); that cost is paid once at
    // startup, not per request.
    let tracer = Tracer::new("127.0.0.1:11311", TraceConfig::default());
    assert!(!tracer.enabled());

    // Warm up thread-local storage and any lazy runtime state.
    assert!(tracer.begin(None, Instant::now()).is_none());
    emit_event("warmup", || "never built".to_owned());
    assert!(take_events().is_empty());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        // The untraced request path: one sampling decision plus the
        // unarmed event emissions middleware makes along the way.
        assert!(tracer.begin(None, Instant::now()).is_none());
        emit_event("retry", || "attempt 1".to_owned());
        emit_event("deadline", || "800ms".to_owned());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "untraced hot path must not allocate ({} allocations in 10k requests)",
        after - before
    );
    assert_eq!(tracer.recorded(), 0, "sampling off => no ring writes");
    assert_eq!(tracer.dropped(), 0);
}

#[test]
fn armed_collector_and_sampling_do_allocate_only_when_tracing() {
    let tracer = Tracer::new(
        "n1",
        TraceConfig {
            sample_every: 1,
            slow_us: 0,
            capacity: 16,
        },
    );
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut trace = tracer.begin(None, Instant::now()).expect("sampled");
    arm_events();
    emit_event("retry", || "attempt 1".to_owned());
    let events = take_events();
    assert_eq!(events.len(), 1);
    let span = trace.begin_span("origin");
    trace.finish_span(span);
    let fin = tracer.finish(trace);
    assert!(fin.retained);
    // Sanity: the traced path did allocate (spans, events, ring entry) —
    // i.e. the zero reading above is a real measurement, not a broken
    // counter.
    assert!(ALLOCATIONS.load(Ordering::Relaxed) > before);
}
