//! Registry and metrics behaviour under an 8-thread writer stress loop:
//! no update may be lost, snapshots taken mid-flight must be internally
//! sane, and concurrent get-or-create registration must alias to a single
//! metric instance.

use csr_obs::{Registry, SampleValue};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 50_000;

#[test]
fn concurrent_writers_lose_no_updates() {
    let registry = Arc::new(Registry::new());
    let workers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Every thread re-registers the same families: get-or-create
                // must hand back the same underlying metrics each time.
                let shard = (w % 2).to_string();
                let c = registry.counter("ops_total", "ops", &[("shard", &shard)]);
                let g = registry.gauge("inflight", "in flight", &[]);
                let h = registry.histogram("lat", "latency", &[("shard", &shard)]);
                for i in 0..OPS_PER_WRITER {
                    c.inc();
                    g.add(1);
                    h.record(i % 4096);
                    g.add(-1);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("writer panicked");
    }

    let snap = registry.snapshot();
    let ops = snap.family("ops_total").expect("family must exist");
    let total: u64 = ops
        .samples
        .iter()
        .map(|s| s.value.as_counter().expect("counter sample"))
        .sum();
    assert_eq!(total, WRITERS as u64 * OPS_PER_WRITER);
    // Gauge returns to zero once all threads balanced their adds.
    match snap.family("inflight").unwrap().samples[0].value {
        SampleValue::Gauge(v) => assert_eq!(v, 0),
        ref other => panic!("expected gauge, got {other:?}"),
    }
    // Histogram: merged shard count equals total recordings, and the sum
    // matches the closed form of sum(i % 4096 for i in 0..OPS_PER_WRITER).
    let merged = snap.family("lat").unwrap().merged_histogram().unwrap();
    assert_eq!(merged.count(), WRITERS as u64 * OPS_PER_WRITER);
    let per_writer: u64 = (0..OPS_PER_WRITER).map(|i| i % 4096).sum();
    assert_eq!(merged.sum(), WRITERS as u64 * per_writer);
    assert_eq!(merged.max(), 4095);
}

#[test]
fn snapshots_under_load_are_internally_sane() {
    // A reader snapshots continuously while writers hammer the metrics.
    // Only per-atomic invariants hold mid-flight (cross-atomic skew is the
    // documented caveat): each number is monotonic and bounded by the
    // eventual total.
    let registry = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));
    let total = WRITERS as u64 * OPS_PER_WRITER;

    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let c = registry.counter("events_total", "", &[]);
                let h = registry.histogram("val", "", &[]);
                for i in 0..OPS_PER_WRITER {
                    c.inc();
                    h.record(i);
                }
            })
        })
        .collect();

    let reader = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut last_counter = 0u64;
            let mut last_hist = 0u64;
            let mut snapshots = 0u32;
            while !stop.load(Ordering::Acquire) {
                let snap = registry.snapshot();
                if let Some(f) = snap.family("events_total") {
                    let v = f.samples[0].value.as_counter().unwrap();
                    assert!(
                        v >= last_counter && v <= total,
                        "counter {v} outside [{last_counter}, {total}]"
                    );
                    last_counter = v;
                }
                if let Some(f) = snap.family("val") {
                    let h = f.merged_histogram().unwrap();
                    assert!(
                        h.count() >= last_hist && h.count() <= total,
                        "histogram count {} outside [{last_hist}, {total}]",
                        h.count()
                    );
                    assert!(h.max() < OPS_PER_WRITER);
                    last_hist = h.count();
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    for w in writers {
        w.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Release);
    let snapshots = reader.join().expect("reader panicked");
    assert!(snapshots > 0, "reader must have sampled at least once");

    let final_count = registry.snapshot().family("events_total").unwrap().samples[0]
        .value
        .as_counter()
        .unwrap();
    assert_eq!(final_count, WRITERS as u64 * OPS_PER_WRITER);
}
