//! Histogram correctness against a sorted-vector oracle.
//!
//! The log-bucketed histogram promises any quantile lands in the same
//! bucket as the true order statistic, i.e. within one sub-bucket width
//! (12.5% relative error). These tests check that bound — and the exact
//! count/sum/max identities — on adversarial and random inputs.

use csr_obs::Histogram;

/// Deterministic 64-bit LCG (constants from Knuth), so the test needs no
/// external randomness.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

/// The true q-quantile under the histogram's rank convention: the
/// `ceil(q * n)`-th smallest element (1-based).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn check_against_oracle(values: &[u64]) {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    let snap = h.snapshot();
    let mut sorted = values.to_vec();
    sorted.sort_unstable();

    assert_eq!(snap.count(), values.len() as u64);
    assert_eq!(snap.sum(), values.iter().sum::<u64>());
    assert_eq!(snap.max(), *sorted.last().unwrap());

    for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
        let want = oracle_quantile(&sorted, q);
        let got = snap.quantile(q);
        // Same-bucket guarantee: at most one sub-bucket width (1/8 of the
        // value) apart, +1 absolute slack for the smallest buckets.
        let tolerance = want / 8 + 1;
        assert!(
            got.abs_diff(want) <= tolerance,
            "q={q}: got {got}, oracle {want}, tolerance {tolerance} (n={})",
            values.len()
        );
    }
}

#[test]
fn uniform_random_inputs() {
    let mut rng = Lcg(0x0B5E_2026);
    for scale_bits in [8u32, 16, 32, 48] {
        let values: Vec<u64> = (0..10_000)
            .map(|_| rng.next() >> (64 - scale_bits))
            .collect();
        check_against_oracle(&values);
    }
}

#[test]
fn skewed_latency_like_inputs() {
    // A latency-shaped distribution: a tight body with a heavy tail,
    // exactly what the per-op histograms in csr-cache will see.
    let mut rng = Lcg(0xCAFE);
    let values: Vec<u64> = (0..50_000)
        .map(|_| {
            let r = rng.next();
            let body = 200 + (r % 100);
            if r % 1000 < 5 {
                body * 500 // rare slow path
            } else {
                body
            }
        })
        .collect();
    check_against_oracle(&values);
}

#[test]
fn constant_and_two_point_distributions() {
    check_against_oracle(&[42; 1000]);
    let mut two: Vec<u64> = vec![1; 900];
    two.extend(std::iter::repeat_n(1_000_000u64, 100));
    check_against_oracle(&two);
}

#[test]
fn small_value_exactness() {
    // Octave 0 (values < 8) is value-exact: quantiles must be *equal* to
    // the oracle, not just within tolerance.
    let values: Vec<u64> = (0..1000).map(|i| i % 8).collect();
    let h = Histogram::new();
    for &v in &values {
        h.record(v);
    }
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let snap = h.snapshot();
    for q in [0.1, 0.5, 0.9] {
        assert_eq!(snap.quantile(q), oracle_quantile(&sorted, q));
    }
}

#[test]
fn extreme_values_do_not_overflow() {
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX / 2);
    h.record(0);
    let snap = h.snapshot();
    assert_eq!(snap.max(), u64::MAX);
    assert_eq!(snap.count(), 3);
    assert!(
        snap.quantile(1.0) >= u64::MAX / 2,
        "top bucket must dominate"
    );
}

#[test]
fn merged_shards_match_single_histogram() {
    // Recording into 8 "shard" histograms and merging the snapshots must
    // be indistinguishable from recording everything into one.
    let mut rng = Lcg(7);
    let shards: Vec<Histogram> = (0..8).map(|_| Histogram::new()).collect();
    let combined = Histogram::new();
    for i in 0..20_000u64 {
        let v = rng.next() % 1_000_000;
        shards[(i % 8) as usize].record(v);
        combined.record(v);
    }
    let mut merged = shards[0].snapshot();
    for s in &shards[1..] {
        merged.merge(&s.snapshot());
    }
    assert_eq!(merged, combined.snapshot());
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(merged.quantile(q), combined.snapshot().quantile(q));
    }
}
