//! Table 2: relative cost savings under first-touch cost mapping.

use crate::{report, ExperimentOpts, TableBuilder};
use csr_harness::{build_benchmarks, table2, CostRatio, PolicyKind, TraceSimConfig};

/// Prints Table 2.
pub fn run(opts: &ExperimentOpts) {
    println!("=== Table 2: relative cost savings, first-touch cost mapping (%) ===");
    let benchmarks = build_benchmarks(opts.scale());
    let cells = table2(
        &benchmarks,
        &CostRatio::TABLE2,
        &PolicyKind::PAPER_SET,
        TraceSimConfig::paper_basic(),
        opts.threads,
    );
    report::write_report(
        opts,
        "table2",
        &report::envelope("table2", opts, report::table2_cells_json(&cells)),
    );
    let mut t = TableBuilder::new();
    let mut header = vec!["benchmark".to_owned(), "policy".to_owned()];
    header.extend(CostRatio::TABLE2.iter().map(ToString::to_string));
    t.header(header);
    for bench in &benchmarks {
        for policy in PolicyKind::PAPER_SET {
            let mut row = vec![bench.name.clone(), policy.to_string()];
            for ratio in CostRatio::TABLE2 {
                let c = cells
                    .iter()
                    .find(|c| c.benchmark == bench.name && c.policy == policy && c.ratio == ratio)
                    .expect("cell computed");
                row.push(format!("{:.2}", c.savings_pct));
            }
            t.row(row);
        }
    }
    print!("{}", t.render());
    println!();
}
