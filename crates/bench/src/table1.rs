//! Table 1: benchmark characteristics.

use crate::{ExperimentOpts, TableBuilder};
use csr_harness::build_benchmarks;

/// Prints Table 1 for the synthetic suite, alongside the paper's values.
pub fn run(opts: &ExperimentOpts) {
    println!("=== Table 1: benchmark characteristics ===");
    let benchmarks = build_benchmarks(opts.scale());
    let paper: &[(&str, &str, usize, f64, f64, f64)] = &[
        // name, size, procs, mem MB, refs (M), remote fraction
        ("barnes", "64K", 8, 11.3, 34.2, 0.448),
        ("lu", "512 x 512", 8, 2.0, 12.7, 0.191),
        ("ocean", "258 x 258", 16, 15.0, 15.6, 0.074),
        ("raytrace", "car", 8, 32.0, 14.0, 0.296),
    ];
    let mut t = TableBuilder::new();
    t.header([
        "benchmark",
        "size",
        "procs",
        "mem (MB)",
        "sample refs",
        "remote frac",
        "paper mem",
        "paper refs",
        "paper remote",
    ]);
    for b in &benchmarks {
        let c = &b.characteristics;
        let p = paper.iter().find(|p| p.0 == c.name);
        t.row([
            c.name.clone(),
            c.problem_size.clone(),
            c.num_procs.to_string(),
            format!("{:.1}", c.memory_usage_mb),
            format!("{:.2}M", c.refs_by_sample as f64 / 1e6),
            format!("{:.1}%", c.remote_access_fraction * 100.0),
            p.map_or(String::from("-"), |p| format!("{:.1}", p.3)),
            p.map_or(String::from("-"), |p| format!("{:.1}M", p.4)),
            p.map_or(String::from("-"), |p| format!("{:.1}%", p.5 * 100.0)),
        ]);
    }
    print!("{}", t.render());
    println!();

    if !opts.extended {
        return;
    }
    // Footnote 2 of the paper: FFT and Radix were also run. Characterize
    // their analogues for completeness.
    println!("--- footnote-2 kernels (extended suite) ---");
    let mut t = TableBuilder::new();
    t.header([
        "benchmark",
        "size",
        "procs",
        "mem (MB)",
        "sample refs",
        "remote frac",
    ]);
    let footnote: Vec<Box<dyn mem_trace::Workload>> = if opts.paper_scale {
        vec![
            Box::new(mem_trace::workloads::FftLike::paper_scale()),
            Box::new(mem_trace::workloads::RadixLike::paper_scale()),
        ]
    } else {
        vec![
            Box::new(mem_trace::workloads::FftLike::default()),
            Box::new(mem_trace::workloads::RadixLike::default()),
        ]
    };
    for w in footnote {
        let trace = w.generate(csr_harness::experiments::BENCH_SEED);
        let sample = mem_trace::representative_processor(&trace);
        let c = mem_trace::characterize(w.name(), &w.problem_size(), &trace, sample);
        t.row([
            c.name.clone(),
            c.problem_size.clone(),
            c.num_procs.to_string(),
            format!("{:.1}", c.memory_usage_mb),
            format!("{:.2}M", c.refs_by_sample as f64 / 1e6),
            format!("{:.1}%", c.remote_access_fraction * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!();
}
