//! Beyond the paper: penalty-based cost functions (Section 7 outlook).
//!
//! "The memory performance of CC-NUMA multiprocessors may be further
//! enhanced if we can measure memory access penalty instead of latency and
//! use the penalty as the target cost function." This experiment runs the
//! Table 5 setup with costs = quantized latency (the paper's Section 4)
//! versus costs = quantized *stall* time attributed to each miss.

use crate::{ExperimentOpts, TableBuilder};
use csr_harness::numa_exp::{rsim_suite, run_numa_cfg};
use csr_harness::PolicyKind;
use numa_sim::{Clock, CostMode, SystemConfig};

fn run(trace: &mem_trace::PhasedTrace, mode: CostMode, policy: PolicyKind) -> u64 {
    let mut cfg = SystemConfig::table4(Clock::Ghz1);
    cfg.cost_mode = mode;
    run_numa_cfg(cfg, trace, policy).exec_time_ps
}

/// Prints the latency-cost vs penalty-cost comparison.
pub fn run_experiment(opts: &ExperimentOpts) {
    println!("=== Beyond the paper: latency vs penalty cost functions (1 GHz) ===");
    let suite = rsim_suite();
    let mut t = TableBuilder::new();
    t.header([
        "benchmark",
        "DCL latency-cost",
        "DCL penalty-cost",
        "ACL latency-cost",
        "ACL penalty-cost",
    ]);
    // Benchmark-innermost ordering spreads heavyweight benchmarks across
    // run_tasks's contiguous thread chunks.
    let tasks: Vec<(usize, CostMode, PolicyKind)> = {
        let mut v = Vec::new();
        for mode in [CostMode::Quantized(60), CostMode::Penalty(60)] {
            for p in [PolicyKind::Dcl, PolicyKind::Acl] {
                for bi in 0..suite.len() {
                    v.push((bi, mode, p));
                }
            }
        }
        v
    };
    let base_idx: Vec<usize> = (0..suite.len()).collect();
    let baselines: Vec<u64> = csr_harness::experiments::run_tasks(opts.threads, &base_idx, |&bi| {
        run(&suite[bi].trace, CostMode::Quantized(60), PolicyKind::Lru)
    });
    let results = csr_harness::experiments::run_tasks(opts.threads, &tasks, |&(bi, mode, p)| {
        run(&suite[bi].trace, mode, p)
    });
    for (bi, b) in suite.iter().enumerate() {
        let pct = |mode: CostMode, p: PolicyKind| {
            let idx = tasks
                .iter()
                .position(|&(i, m, pol)| i == bi && m == mode && pol == p)
                .expect("task scheduled");
            cache_sim::relative_savings_pct(
                cache_sim::Cost(baselines[bi]),
                cache_sim::Cost(results[idx]),
            )
        };
        t.row([
            b.name.clone(),
            format!("{:+.2}%", pct(CostMode::Quantized(60), PolicyKind::Dcl)),
            format!("{:+.2}%", pct(CostMode::Penalty(60), PolicyKind::Dcl)),
            format!("{:+.2}%", pct(CostMode::Quantized(60), PolicyKind::Acl)),
            format!("{:+.2}%", pct(CostMode::Penalty(60), PolicyKind::Acl)),
        ]);
    }
    print!("{}", t.render());
    println!("(execution-time reduction over the latency-cost LRU baseline)");
    println!();
}
