//! Machine-readable experiment output.
//!
//! When the `experiments` binary runs with `--json <dir>`, each subcommand
//! mirrors its printed table as a `BENCH_<name>.json` file in that
//! directory, rendered (and re-parsed as a self-check) through the
//! `csr-obs` JSON exporter. Downstream tooling can regenerate any figure
//! from these files without scraping the human-oriented tables, and every
//! reported number carries its provenance (benchmark, policy, cost ratio,
//! workload scale).

use crate::ExperimentOpts;
use csr_harness::{CostRatio, SavingsPoint, Table2Cell};
use csr_obs::Json;
use std::path::PathBuf;

/// Converts a cost ratio to JSON: the finite ratio as an integer, the
/// paper's infinite ratio as the string `"inf"`.
#[must_use]
pub fn ratio_json(ratio: CostRatio) -> Json {
    match ratio {
        CostRatio::Finite(r) => Json::uint(r),
        CostRatio::Infinite => Json::str("inf"),
    }
}

/// The Figure 3 grid as an array of per-point records.
#[must_use]
pub fn savings_points_json(points: &[SavingsPoint]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::obj([
                    ("benchmark", Json::str(p.benchmark.as_str())),
                    ("policy", Json::str(p.policy.label())),
                    ("ratio", ratio_json(p.ratio)),
                    ("haf", Json::Float(p.haf)),
                    ("savings_pct", Json::Float(p.savings_pct)),
                ])
            })
            .collect(),
    )
}

/// The Table 2 cells as an array of per-cell records.
#[must_use]
pub fn table2_cells_json(cells: &[Table2Cell]) -> Json {
    Json::Arr(
        cells
            .iter()
            .map(|c| {
                Json::obj([
                    ("benchmark", Json::str(c.benchmark.as_str())),
                    ("policy", Json::str(c.policy.label())),
                    ("ratio", ratio_json(c.ratio)),
                    ("savings_pct", Json::Float(c.savings_pct)),
                ])
            })
            .collect(),
    )
}

/// Wraps a subcommand's data in the common report envelope. The `meta`
/// object stamps each report with its run configuration (tool, version,
/// trace seed, scale, thread count), so a `BENCH_*.json` found cold is
/// self-describing and reproducible.
#[must_use]
pub fn envelope(experiment: &str, opts: &ExperimentOpts, data: Json) -> Json {
    Json::obj([
        ("experiment", Json::str(experiment)),
        ("scale", Json::str(format!("{:?}", opts.scale()))),
        ("extended", Json::Bool(opts.extended)),
        (
            "meta",
            Json::obj([
                ("tool", Json::str("experiments")),
                ("version", Json::str(env!("CARGO_PKG_VERSION"))),
                ("seed", Json::uint(csr_harness::experiments::BENCH_SEED)),
                ("scale", Json::str(format!("{:?}", opts.scale()))),
                ("extended", Json::Bool(opts.extended)),
                ("threads", Json::uint(opts.threads as u64)),
            ]),
        ),
        ("data", data),
    ])
}

/// If `--json <dir>` was given, writes `value` to `<dir>/BENCH_<name>.json`
/// and returns the path. The rendered text is parsed back before writing so
/// a malformed report fails the run instead of poisoning downstream tools.
///
/// # Panics
///
/// Panics if the directory or file cannot be written, or if the rendered
/// JSON fails to re-parse — an experiment run that cannot deliver the
/// report it was asked for should fail loudly.
pub fn write_report(opts: &ExperimentOpts, name: &str, value: &Json) -> Option<PathBuf> {
    let dir = opts.json_dir.as_ref()?;
    let text = value.render();
    Json::parse(&text).expect("rendered report must re-parse");
    std::fs::create_dir_all(dir).expect("create --json directory");
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, text + "\n").expect("write JSON report");
    eprintln!("wrote {}", path.display());
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csr_harness::PolicyKind;

    #[test]
    fn reports_round_trip_through_the_exporter() {
        let points = vec![SavingsPoint {
            benchmark: "mp3d".into(),
            policy: PolicyKind::Dcl,
            ratio: CostRatio::Infinite,
            haf: 0.05,
            savings_pct: 12.5,
        }];
        let opts = ExperimentOpts::default();
        let report = envelope("fig3", &opts, savings_points_json(&points));
        let parsed = Json::parse(&report.render()).expect("round trip");
        assert_eq!(parsed, report);
        let row = &parsed.get("data").and_then(Json::as_arr).expect("data")[0];
        assert_eq!(row.get("policy").and_then(Json::as_str), Some("DCL"));
        assert_eq!(row.get("ratio").and_then(Json::as_str), Some("inf"));
        assert_eq!(row.get("savings_pct").and_then(Json::as_f64), Some(12.5));
    }

    #[test]
    fn write_report_is_a_no_op_without_json_dir() {
        let opts = ExperimentOpts::default();
        assert!(write_report(&opts, "fig3", &Json::Null).is_none());
    }

    #[test]
    fn write_report_emits_a_parseable_file() {
        let dir = std::env::temp_dir().join("csr-bench-report-test");
        let opts = ExperimentOpts {
            json_dir: Some(dir.clone()),
            ..ExperimentOpts::default()
        };
        let cells = vec![Table2Cell {
            benchmark: "lu".into(),
            policy: PolicyKind::Gd,
            ratio: CostRatio::Finite(8),
            savings_pct: -1.25,
        }];
        let report = envelope("table2", &opts, table2_cells_json(&cells));
        let path = write_report(&opts, "table2", &report).expect("path");
        let text = std::fs::read_to_string(&path).expect("readable");
        let parsed = Json::parse(&text).expect("parseable");
        assert_eq!(
            parsed.get("experiment").and_then(Json::as_str),
            Some("table2")
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
