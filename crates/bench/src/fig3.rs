//! Figure 3: relative cost savings under random cost mapping, as a grid of
//! (benchmark × policy) tables over HAF and cost ratio.

use crate::{report, ExperimentOpts, TableBuilder};
use csr_harness::{build_benchmarks, fig3_grid, fig3_hafs, CostRatio, PolicyKind, TraceSimConfig};

/// Prints the full Figure 3 grid.
pub fn run(opts: &ExperimentOpts) {
    println!("=== Figure 3: relative cost savings, random cost mapping (%) ===");
    println!("(16KB 4-way L2, 64B blocks, 4KB direct-mapped L1 filter)");
    let benchmarks = build_benchmarks(opts.scale());
    let hafs = fig3_hafs();
    let points = fig3_grid(
        &benchmarks,
        &hafs,
        &CostRatio::FIG3,
        &PolicyKind::PAPER_SET,
        TraceSimConfig::paper_basic(),
        opts.threads,
    );
    report::write_report(
        opts,
        "fig3",
        &report::envelope("fig3", opts, report::savings_points_json(&points)),
    );

    // Index once instead of scanning the whole grid per cell.
    let mut index: std::collections::HashMap<(&str, PolicyKind, u64, u64), f64> =
        std::collections::HashMap::new();
    let key_of = |ratio: CostRatio| match ratio {
        CostRatio::Finite(r) => r,
        CostRatio::Infinite => u64::MAX,
    };
    for p in &points {
        index.insert(
            (
                p.benchmark.as_str(),
                p.policy,
                key_of(p.ratio),
                (p.haf * 1000.0).round() as u64,
            ),
            p.savings_pct,
        );
    }
    for bench in &benchmarks {
        for policy in PolicyKind::PAPER_SET {
            println!("--- {} / {} ---", bench.name, policy);
            let mut t = TableBuilder::new();
            let mut header = vec!["HAF".to_owned()];
            header.extend(CostRatio::FIG3.iter().map(ToString::to_string));
            t.header(header);
            for &haf in &hafs {
                let mut row = vec![format!("{haf:.2}")];
                for ratio in CostRatio::FIG3 {
                    let key = (
                        bench.name.as_str(),
                        policy,
                        key_of(ratio),
                        (haf * 1000.0).round() as u64,
                    );
                    let savings = index.get(&key).expect("grid point computed");
                    row.push(format!("{savings:.2}"));
                }
                t.row(row);
            }
            print!("{}", t.render());
            println!();
        }
    }
}
