//! Table 5: execution-time reduction over LRU for the cost-sensitive
//! policies on the CC-NUMA machine, at 500 MHz and 1 GHz.

use crate::{ExperimentOpts, TableBuilder};
use csr_harness::numa_exp::{rsim_suite, rsim_suite_extended, table5, TABLE5_POLICIES};
use numa_sim::Clock;

/// Prints Table 5.
pub fn run(opts: &ExperimentOpts) {
    println!("=== Table 5: execution-time reduction over LRU (%) ===");
    let suite = if opts.extended {
        rsim_suite_extended()
    } else {
        rsim_suite()
    };
    let cells = table5(
        &suite,
        &[Clock::Mhz500, Clock::Ghz1],
        &TABLE5_POLICIES,
        opts.threads,
    );
    for clock in [Clock::Mhz500, Clock::Ghz1] {
        println!("--- {} processor ---", clock.label());
        let mut t = TableBuilder::new();
        let mut header = vec!["benchmark".to_owned()];
        header.extend(TABLE5_POLICIES.iter().map(|p| p.label()));
        t.header(header);
        for b in &suite {
            let mut row = vec![b.name.clone()];
            for &policy in &TABLE5_POLICIES {
                let cell = cells
                    .iter()
                    .find(|c| c.benchmark == b.name && c.clock == clock && c.policy == policy)
                    .expect("cell computed");
                row.push(format!("{:.2}", cell.reduction_pct));
            }
            t.row(row);
        }
        print!("{}", t.render());
    }
    println!("(paper: DCL/ACL give the largest, most reliable reductions — up to ~18%)");
    println!();
}
