//! Cache-parameter sweeps (Section 3.1): the paper varies associativity
//! from 2 to 8 and examines cache sizes around the working-set knees
//! (8 KB and 64 KB). This subcommand reports DCL's savings over LRU across
//! that parameter grid, showing where reservations have room to work.

use crate::{ExperimentOpts, TableBuilder};
use csr_harness::{build_benchmarks, fig3_grid, CostRatio, PolicyKind, TraceSimConfig};

/// Prints savings across associativities and cache sizes.
pub fn run(opts: &ExperimentOpts) {
    println!("=== Parameter sweep: DCL savings over LRU (%), random mapping, HAF=0.2 r=8 ===");
    let benchmarks = build_benchmarks(opts.scale());

    println!("--- associativity (16 KB L2) ---");
    let mut t = TableBuilder::new();
    let assocs = [2usize, 4, 8];
    let mut header = vec!["benchmark".to_owned()];
    header.extend(assocs.iter().map(|a| format!("{a}-way")));
    t.header(header);
    let mut rows: Vec<Vec<String>> = benchmarks.iter().map(|b| vec![b.name.clone()]).collect();
    for &assoc in &assocs {
        let cfg = TraceSimConfig::with_l2(16 * 1024, assoc);
        let pts = fig3_grid(
            &benchmarks,
            &[0.2],
            &[CostRatio::Finite(8)],
            &[PolicyKind::Dcl],
            cfg,
            opts.threads,
        );
        for (i, b) in benchmarks.iter().enumerate() {
            let p = pts
                .iter()
                .find(|p| p.benchmark == b.name)
                .expect("sweep point computed");
            rows[i].push(format!("{:.2}", p.savings_pct));
        }
    }
    for row in rows {
        t.row(row);
    }
    print!("{}", t.render());
    println!();

    println!("--- L2 size (4-way) ---");
    let sizes = [8u64, 16, 32, 64];
    let mut t = TableBuilder::new();
    let mut header = vec!["benchmark".to_owned()];
    header.extend(sizes.iter().map(|s| format!("{s}KB")));
    t.header(header);
    let mut rows: Vec<Vec<String>> = benchmarks.iter().map(|b| vec![b.name.clone()]).collect();
    for &kb in &sizes {
        let cfg = TraceSimConfig::with_l2(kb * 1024, 4);
        let pts = fig3_grid(
            &benchmarks,
            &[0.2],
            &[CostRatio::Finite(8)],
            &[PolicyKind::Dcl],
            cfg,
            opts.threads,
        );
        for (i, b) in benchmarks.iter().enumerate() {
            let p = pts
                .iter()
                .find(|p| p.benchmark == b.name)
                .expect("sweep point computed");
            rows[i].push(format!("{:.2}", p.savings_pct));
        }
    }
    for row in rows {
        t.row(row);
    }
    print!("{}", t.render());
    println!("(reservations pay off when reuse sits just beyond the cache: growing");
    println!(" the cache toward a kernel's reuse band increases savings, until the");
    println!(" working set fits outright and there is nothing left to save — the");
    println!(" paper picks 16 KB so replacements stay frequent; see Section 3.1)");
    println!();
}
