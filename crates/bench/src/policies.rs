//! Beyond the paper: policy-zoo shoot-out over phase-shifting workloads.
//!
//! Runs every [`Policy`] the runtime cache supports — the paper's
//! cost-sensitive set plus the modern zoo (S3-FIFO, SLRU, LFUDA, GDSF,
//! CAMP) — head-to-head over three synthetic key streams, and pits the
//! online adaptive selector against all of them:
//!
//! * `zipf`  — skewed reuse with bimodal miss costs (steady state),
//! * `scan`  — the zipf stream interleaved with a long cyclic one-touch
//!   scan that thrashes recency-only policies,
//! * `phase` — zipf, then scan-heavy, then zipf again: the trace the
//!   adaptive selector is built for.
//!
//! Scoring is modeled cost savings: every hit saves the miss cost the
//! backing store would have charged for that key. The emitted
//! `BENCH_policies.json` carries the full matrix plus a `checks` object
//! the CI smoke job greps for.

use crate::{report, ExperimentOpts, TableBuilder};
use csr_cache::{CsrCache, Policy, SelectorConfig};
use csr_obs::Json;
use mem_trace::rng::SplitMix64;
use std::collections::hash_map::DefaultHasher;
use std::hash::BuildHasher;

/// Keys in the skewed (zipf) namespace.
const KEYS: usize = 4096;
/// Cache capacity (entries, single shard).
const CAPACITY: usize = 512;
/// Length of the cyclic scan key range — wider than the cache so a
/// recency-only policy churns on it without ever collecting a hit.
const SCAN_SPACE: u64 = 2048;
/// First key of the scan namespace, disjoint from the zipf keys.
const SCAN_BASE: u64 = 1 << 32;
/// Zipf skew for the reuse-heavy phases.
const THETA: f64 = 0.9;
/// Candidate pair the adaptive row selects between: GDSF wins the
/// steady zipf acts on modeled savings, DCL wins the scan-heavy act
/// (it concentrates capacity on the expensive working set while the
/// scan flushes GDSF's frequency ladder), so a phase shift produces a
/// genuine lead change for the selector to track.
const CANDIDATES: (Policy, Policy) = (Policy::Dcl, Policy::Gdsf);

/// Deterministic [`BuildHasher`]: `DefaultHasher::new()` uses fixed keys,
/// so key→shard-slot placement is identical on every run.
#[derive(Clone, Default)]
struct FixedState;

impl BuildHasher for FixedState {
    type Hasher = DefaultHasher;
    fn build_hasher(&self) -> DefaultHasher {
        DefaultHasher::new()
    }
}

/// Modeled cost of re-fetching `key` on a miss: one key in eight is
/// expensive (a far-away origin), the rest are cheap.
fn cost_of(key: u64) -> u64 {
    if key.is_multiple_of(8) {
        16
    } else {
        1
    }
}

/// Cumulative Zipf distribution over ranks `1..=n` with skew `theta`.
fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for rank in 1..=n {
        total += 1.0 / (rank as f64).powf(theta);
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Draws one zipf-ranked key.
fn zipf_key(cdf: &[f64], rng: &mut SplitMix64) -> u64 {
    let u = rng.next_u64() as f64 / u64::MAX as f64;
    cdf.partition_point(|&c| c < u) as u64
}

/// One synthetic key stream.
struct Workload {
    name: &'static str,
    trace: Vec<u64>,
}

/// Builds the three workloads; `ops` is the per-workload trace length.
fn workloads(ops: usize, seed: u64) -> Vec<Workload> {
    let cdf = zipf_cdf(KEYS, THETA);
    let mut out = Vec::new();

    let mut rng = SplitMix64::new(seed);
    let zipf: Vec<u64> = (0..ops).map(|_| zipf_key(&cdf, &mut rng)).collect();
    out.push(Workload {
        name: "zipf",
        trace: zipf,
    });

    // Half the ops walk a cyclic scan range that never fits in the cache.
    let mut rng = SplitMix64::new(seed ^ 0x5ca_0001);
    let mut scan_pos = 0u64;
    let scan: Vec<u64> = (0..ops)
        .map(|_| {
            if rng.chance(0.5) {
                scan_pos += 1;
                SCAN_BASE + scan_pos % SCAN_SPACE
            } else {
                zipf_key(&cdf, &mut rng)
            }
        })
        .collect();
    out.push(Workload {
        name: "scan",
        trace: scan,
    });

    // Three acts: zipf, scan-heavy (90% scans), zipf again.
    let mut rng = SplitMix64::new(seed ^ 0x5ca_0002);
    let mut scan_pos = 0u64;
    let phase: Vec<u64> = (0..ops)
        .map(|i| {
            let scanning = (ops / 3..2 * ops / 3).contains(&i);
            if scanning && rng.chance(0.9) {
                scan_pos += 1;
                SCAN_BASE + scan_pos % SCAN_SPACE
            } else {
                zipf_key(&cdf, &mut rng)
            }
        })
        .collect();
    out.push(Workload {
        name: "phase",
        trace: phase,
    });
    out
}

/// Result of one (policy, workload) cell.
struct Cell {
    policy: &'static str,
    workload: &'static str,
    ops: u64,
    hits: u64,
    savings: u64,
    /// Selector flips (adaptive row only).
    flips: Option<u64>,
}

impl Cell {
    fn hit_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.hits as f64 / self.ops as f64
        }
    }
}

/// Replays `trace` through a fresh single-shard cache and scores it.
fn run_cell(trace: &[u64], policy: Option<Policy>, workload: &'static str) -> Cell {
    let mut builder = CsrCache::builder(CAPACITY)
        .shards(1)
        .hasher(FixedState)
        .cost_fn(|k: &u64, _v: &u64| cost_of(*k));
    builder = match policy {
        Some(p) => builder.policy(p),
        None => builder.adaptive(SelectorConfig {
            candidates: CANDIDATES,
            sample_every: 1,
            epoch_len: 512,
            hysteresis: 2,
            min_flip_gap: 2,
            ghost_capacity: 0,
        }),
    };
    let cache: CsrCache<u64, u64, FixedState> = builder.build();
    let mut hits = 0u64;
    let mut savings = 0u64;
    for &key in trace {
        if cache.get(&key).is_some() {
            hits += 1;
            savings += cost_of(key);
        } else {
            cache.insert(key, key);
        }
    }
    Cell {
        policy: match policy {
            Some(p) => p.name(),
            None => "ADAPTIVE",
        },
        workload,
        ops: trace.len() as u64,
        hits,
        savings,
        flips: cache.selector_stats().map(|s| s.flips),
    }
}

/// Looks up a cell by policy name and workload.
fn cell<'a>(cells: &'a [Cell], policy: &str, workload: &str) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.policy == policy && c.workload == workload)
        .expect("matrix cell present")
}

/// Acceptance checks derived from the matrix, emitted into the JSON for
/// the CI smoke job to grep.
struct Checks {
    s3fifo_beats_lru_scan: bool,
    adaptive_flipped: bool,
    adaptive_ge_95pct_best_static: bool,
    adaptive_beats_worst_static: bool,
}

fn checks(cells: &[Cell]) -> Checks {
    let statics: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.workload == "phase" && c.policy != "ADAPTIVE")
        .collect();
    let best = statics.iter().map(|c| c.savings).max().unwrap_or(0);
    let worst = statics.iter().map(|c| c.savings).min().unwrap_or(0);
    let adaptive = cell(cells, "ADAPTIVE", "phase");
    Checks {
        s3fifo_beats_lru_scan: cell(cells, "S3-FIFO", "scan").hits
            > cell(cells, "LRU", "scan").hits,
        adaptive_flipped: adaptive.flips.unwrap_or(0) >= 1,
        adaptive_ge_95pct_best_static: adaptive.savings * 100 >= best * 95,
        adaptive_beats_worst_static: adaptive.savings > worst,
    }
}

fn cells_json(cells: &[Cell]) -> Json {
    Json::Arr(
        cells
            .iter()
            .map(|c| {
                let mut fields = vec![
                    ("workload", Json::str(c.workload)),
                    ("policy", Json::str(c.policy)),
                    ("ops", Json::uint(c.ops)),
                    ("hits", Json::uint(c.hits)),
                    ("hit_rate", Json::Float(c.hit_rate())),
                    ("modeled_savings", Json::uint(c.savings)),
                ];
                if let Some(flips) = c.flips {
                    fields.push(("selector_flips", Json::uint(flips)));
                }
                Json::obj(fields)
            })
            .collect(),
    )
}

/// Runs the policy × workload matrix and emits `BENCH_policies.json`.
pub fn run_experiment(opts: &ExperimentOpts) {
    let ops = if opts.paper_scale { 240_000 } else { 60_000 };
    println!("=== Beyond the paper: policy zoo vs adaptive selection ===");
    println!(
        "    {KEYS} zipf keys (theta {THETA}), {CAPACITY}-entry cache, {ops} ops/workload, \
         adaptive = {},{}",
        CANDIDATES.0.name(),
        CANDIDATES.1.name()
    );
    let loads = workloads(ops, csr_harness::experiments::BENCH_SEED);

    let mut cells: Vec<Cell> = Vec::new();
    let tasks: Vec<(usize, Option<Policy>)> = {
        let mut v = Vec::new();
        for (wi, _) in loads.iter().enumerate() {
            for p in Policy::ALL {
                v.push((wi, Some(p)));
            }
            v.push((wi, None));
        }
        v
    };
    let results = csr_harness::experiments::run_tasks(opts.threads, &tasks, |&(wi, p)| {
        run_cell(&loads[wi].trace, p, loads[wi].name)
    });
    cells.extend(results);

    for load in &loads {
        let mut t = TableBuilder::new();
        t.header(["policy", "hits", "hit rate", "modeled savings"]);
        let mut ranked: Vec<&Cell> = cells.iter().filter(|c| c.workload == load.name).collect();
        ranked.sort_by_key(|c| std::cmp::Reverse(c.savings));
        for c in &ranked {
            t.row([
                c.policy.to_string(),
                c.hits.to_string(),
                format!("{:.1}%", c.hit_rate() * 100.0),
                c.savings.to_string(),
            ]);
        }
        println!("\n--- workload: {} ---", load.name);
        print!("{}", t.render());
    }

    let ck = checks(&cells);
    println!("\nchecks:");
    println!(
        "  s3fifo_beats_lru_scan          {}",
        ck.s3fifo_beats_lru_scan
    );
    println!("  adaptive_flipped               {}", ck.adaptive_flipped);
    println!(
        "  adaptive_ge_95pct_best_static  {}",
        ck.adaptive_ge_95pct_best_static
    );
    println!(
        "  adaptive_beats_worst_static    {}",
        ck.adaptive_beats_worst_static
    );

    report::write_report(
        opts,
        "policies",
        &report::envelope(
            "policies",
            opts,
            Json::obj([
                ("keys", Json::uint(KEYS as u64)),
                ("capacity", Json::uint(CAPACITY as u64)),
                ("ops_per_workload", Json::uint(ops as u64)),
                (
                    "candidates",
                    Json::str(format!("{},{}", CANDIDATES.0.name(), CANDIDATES.1.name())),
                ),
                ("cells", cells_json(&cells)),
                (
                    "checks",
                    Json::obj([
                        (
                            "s3fifo_beats_lru_scan",
                            Json::Bool(ck.s3fifo_beats_lru_scan),
                        ),
                        ("adaptive_flipped", Json::Bool(ck.adaptive_flipped)),
                        (
                            "adaptive_ge_95pct_best_static",
                            Json::Bool(ck.adaptive_ge_95pct_best_static),
                        ),
                        (
                            "adaptive_beats_worst_static",
                            Json::Bool(ck.adaptive_beats_worst_static),
                        ),
                    ]),
                ),
            ]),
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = workloads(3000, 7);
        let b = workloads(3000, 7);
        assert_eq!(a.len(), 3);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.trace, wb.trace, "{}", wa.name);
        }
        // Scan keys live in their own namespace.
        assert!(a[1].trace.iter().any(|&k| k >= SCAN_BASE));
        assert!(a[0].trace.iter().all(|&k| k < KEYS as u64));
    }

    #[test]
    fn scan_workload_separates_s3fifo_from_lru() {
        let loads = workloads(20_000, csr_harness::experiments::BENCH_SEED);
        let scan = &loads[1];
        let lru = run_cell(&scan.trace, Some(Policy::Lru), scan.name);
        let s3 = run_cell(&scan.trace, Some(Policy::S3Fifo), scan.name);
        assert!(
            s3.hits > lru.hits,
            "S3-FIFO {} <= LRU {} on scan",
            s3.hits,
            lru.hits
        );
    }

    #[test]
    fn adaptive_flips_on_phase_shift() {
        let loads = workloads(30_000, csr_harness::experiments::BENCH_SEED);
        let phase = &loads[2];
        let adaptive = run_cell(&phase.trace, None, phase.name);
        assert!(adaptive.flips.unwrap_or(0) >= 1, "selector never flipped");
    }
}
