//! Minimal aligned-column text table rendering for experiment output.

/// Builds an aligned text table.
#[derive(Debug, Default)]
pub struct TableBuilder {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        TableBuilder::default()
    }

    /// Sets the header row.
    pub fn header<I, S>(&mut self, cols: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<I, S>(&mut self, cols: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            cells.join("  ")
        };
        let mut out = String::new();
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableBuilder::new();
        t.header(["name", "v"]);
        t.row(["a", "1.5"]);
        t.row(["longer", "22.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("1.5"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn empty_table_renders_empty() {
        assert_eq!(TableBuilder::new().render(), "");
    }
}
