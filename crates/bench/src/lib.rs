//! # csr-bench
//!
//! Experiment binaries and Criterion benches that regenerate every table
//! and figure of *Cost-Sensitive Cache Replacement Algorithms* (HPCA 2003).
//! See `DESIGN.md` at the repository root for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig3;
pub mod hwcost;
pub mod penalty;
pub mod policies;
pub mod report;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
mod tablefmt;

pub use tablefmt::TableBuilder;

/// Options shared by all experiment subcommands.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Run the paper's full problem sizes instead of the quick defaults.
    pub paper_scale: bool,
    /// Include the footnote-2 kernels (FFT, Radix) where applicable.
    pub extended: bool,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Mirror results as `BENCH_<name>.json` files into this directory
    /// (see [`report`]). `None` prints tables only.
    pub json_dir: Option<std::path::PathBuf>,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            paper_scale: false,
            extended: false,
            threads: csr_harness::default_threads(),
            json_dir: None,
        }
    }
}

impl ExperimentOpts {
    /// The workload scale selected by the options.
    #[must_use]
    pub fn scale(&self) -> csr_harness::Scale {
        if self.paper_scale {
            csr_harness::Scale::Paper
        } else {
            csr_harness::Scale::Quick
        }
    }
}
