//! Table 4: the baseline system configuration, with the unloaded-latency
//! targets verified against the simulator's analytic model.

use crate::{ExperimentOpts, TableBuilder};
use numa_sim::{Clock, SystemConfig};

/// Prints the Table 4 configuration and derived unloaded latencies.
pub fn run(_opts: &ExperimentOpts) {
    println!("=== Table 4: baseline system configuration ===");
    let cfg = SystemConfig::table4(Clock::Mhz500);
    let mut t = TableBuilder::new();
    t.header(["parameter", "value"]);
    t.row([
        "processors".to_owned(),
        format!(
            "{} ({}x{} mesh)",
            cfg.num_nodes,
            cfg.mesh_side(),
            cfg.mesh_side()
        ),
    ]);
    t.row(["clock".to_owned(), "500 MHz or 1 GHz".to_owned()]);
    t.row([
        "L1".to_owned(),
        "4 KB direct-mapped, 64 B blocks, 1-cycle access".to_owned(),
    ]);
    t.row([
        "L2".to_owned(),
        "16 KB 4-way, 64 B blocks, 6-cycle access, 8 MSHRs".to_owned(),
    ]);
    t.row(["memory".to_owned(), format!("{} ns access", cfg.mem_ns)]);
    t.row([
        "links".to_owned(),
        format!("64-bit, {} ns flit delay", cfg.flit_ns),
    ]);
    t.row([
        "protocol".to_owned(),
        "MESI with replacement hints".to_owned(),
    ]);
    print!("{}", t.render());

    println!("--- derived unloaded minimum latencies (paper targets: 120 / 380 / 480 ns) ---");
    let mut t = TableBuilder::new();
    t.header(["transaction", "model (ns)", "paper (ns)"]);
    t.row([
        "local clean".to_owned(),
        cfg.unloaded_clean_ns(0, 0).to_string(),
        "120".to_owned(),
    ]);
    t.row([
        "remote clean (min)".to_owned(),
        cfg.unloaded_clean_ns(0, 1).to_string(),
        "380".to_owned(),
    ]);
    t.row([
        "remote dirty (min)".to_owned(),
        cfg.unloaded_dirty_ns(0, 1, 4).to_string(),
        "480".to_owned(),
    ]);
    print!("{}", t.render());
    println!();
}
