//! Section 5: hardware-overhead model output.

use crate::{ExperimentOpts, TableBuilder};
use csr::{CostSource, HwParams, HwPolicy};

/// Prints the Section 5 hardware-overhead numbers.
pub fn run(_opts: &ExperimentOpts) {
    println!("=== Section 5: hardware overhead over LRU ===");
    let example = HwParams::paper_example();
    let mut t = TableBuilder::new();
    t.header([
        "policy",
        "dynamic bits/set",
        "dynamic %",
        "static bits/set",
        "static %",
    ]);
    for policy in [HwPolicy::Bcl, HwPolicy::Gd, HwPolicy::Dcl, HwPolicy::Acl] {
        t.row([
            format!("{policy:?}"),
            example
                .added_bits_per_set(policy, CostSource::DynamicPerBlock)
                .to_string(),
            format!(
                "{:.2}",
                example.overhead_pct(policy, CostSource::DynamicPerBlock)
            ),
            example
                .added_bits_per_set(policy, CostSource::StaticTable)
                .to_string(),
            format!(
                "{:.2}",
                example.overhead_pct(policy, CostSource::StaticTable)
            ),
        ]);
    }
    print!("{}", t.render());
    println!("(paper: dynamic ~1.9/2.7/6.6/6.7 %, static 0.4/1.5/4.0/4.1 % for BCL/GD/DCL/ACL)");
    println!();

    println!("--- quantized-latency encoding (2-bit fixed, 3-bit computed, 4-bit ETD tags) ---");
    let q = HwParams::paper_quantized_example();
    let mut t = TableBuilder::new();
    t.header(["policy", "bits/set"]);
    for policy in [HwPolicy::Bcl, HwPolicy::Gd, HwPolicy::Dcl, HwPolicy::Acl] {
        t.row([
            format!("{policy:?}"),
            q.added_bits_per_set(policy, CostSource::DynamicPerBlock)
                .to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(paper: 11/20/32/35 bits for BCL/GD/DCL/ACL)");
    println!();
}
