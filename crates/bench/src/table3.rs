//! Table 3: correlation between consecutive miss latencies to the same
//! block by the same processor (execution-driven, LRU replacement).

use crate::{ExperimentOpts, TableBuilder};
use csr_harness::numa_exp::{rsim_suite, run_numa_cfg};
use csr_harness::PolicyKind;
use numa_sim::{Clock, MissClass, SystemConfig, Table3Matrix};

/// Prints the Table 3 matrix.
pub fn run(opts: &ExperimentOpts) {
    // The paper's Table 3 is measured on the protocol *without* replacement
    // hints; it notes "similar results are obtained in the protocol with
    // replacement hints" — both are printed here.
    println!("=== Table 3: consecutive-miss latency correlation (no hints, LRU) ===");
    let suite = rsim_suite();
    // One parallel batch covers both protocol variants.
    let tasks: Vec<(usize, bool)> = [false, true]
        .iter()
        .flat_map(|&h| (0..suite.len()).map(move |bi| (bi, h)))
        .collect();
    let per_run = csr_harness::experiments::run_tasks(opts.threads, &tasks, |&(bi, hints)| {
        let mut cfg = SystemConfig::table4(Clock::Mhz500);
        cfg.replacement_hints = hints;
        run_numa_cfg(cfg, &suite[bi].trace, PolicyKind::Lru).table3
    });
    let merge = |hints: bool| {
        let mut merged = Table3Matrix::new();
        for ((_, h), m2) in tasks.iter().zip(&per_run) {
            if *h == hints {
                merged.merge(m2);
            }
        }
        merged
    };
    let m = merge(false);

    let mut occ = TableBuilder::new();
    let mut mis = TableBuilder::new();
    let mut err = TableBuilder::new();
    let header = |t: &mut TableBuilder| {
        let mut h = vec!["last \\ cur".to_owned()];
        h.extend((0..6).map(|i| MissClass::label(i).to_owned()));
        t.header(h);
    };
    header(&mut occ);
    header(&mut mis);
    header(&mut err);
    for last in 0..6 {
        let mut ro = vec![MissClass::label(last).to_owned()];
        let mut rm = ro.clone();
        let mut re = ro.clone();
        for cur in 0..6 {
            let cell = m.cell(last, cur);
            ro.push(format!("{:.1}", m.occurrence_pct(last, cur)));
            rm.push(format!("{:.0}", cell.mismatch_pct()));
            re.push(format!("{:.0}", cell.avg_err_ns()));
        }
        occ.row(ro);
        mis.row(rm);
        err.row(re);
    }
    println!("--- occurrence (%) ---");
    print!("{}", occ.render());
    println!("--- mismatch (%) ---");
    print!("{}", mis.render());
    println!("--- avg |latency error| (ns) over mismatching pairs ---");
    print!("{}", err.render());
    println!(
        "same-latency fraction: {:.1}%  (paper: ~93% of misses repeat the previous latency)",
        m.same_latency_pct()
    );
    println!("pairs analysed: {}", m.total_pairs());
    let with_hints = merge(true);
    println!(
        "with replacement hints (Table 4 protocol): same-latency {:.1}% over {} pairs",
        with_hints.same_latency_pct(),
        with_hints.total_pairs()
    );
    println!();
}
