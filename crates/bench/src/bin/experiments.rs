//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments <subcommand> [--paper-scale] [--extended (table1/table5)] [--threads N]
//!                          [--json DIR (fig3/table2)]
//!
//! Subcommands:
//!   table1    benchmark characteristics
//!   fig3      relative cost savings, random cost mapping (full grid)
//!   table2    relative cost savings, first-touch cost mapping
//!   table3    consecutive-miss latency correlation (NUMA simulation)
//!   table4    baseline NUMA system configuration
//!   table5    execution-time reduction under latency-sensitive replacement
//!   hwcost    Section 5 hardware-overhead model
//!   sweep     associativity and cache-size sweeps (Section 3.1)
//!   penalty   penalty-based cost function (Section 7 outlook)
//!   policies  policy zoo vs adaptive selection over phase-shifting workloads
//!   all       everything above in sequence
//! ```

use csr_bench::{
    fig3, hwcost, penalty, policies, sweep, table1, table2, table3, table4, table5, ExperimentOpts,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sub = None;
    let mut opts = ExperimentOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper-scale" => opts.paper_scale = true,
            "--extended" => opts.extended = true,
            "--threads" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
                opts.threads = n;
            }
            "--json" => {
                let dir = it.next().unwrap_or_else(|| die("--json needs a directory"));
                opts.json_dir = Some(dir.into());
            }
            s if sub.is_none() && !s.starts_with('-') => sub = Some(s.to_owned()),
            other => die(&format!("unknown argument: {other}")),
        }
    }
    let sub = sub.unwrap_or_else(|| die("missing subcommand"));
    match sub.as_str() {
        "table1" => table1::run(&opts),
        "fig3" => fig3::run(&opts),
        "table2" => table2::run(&opts),
        "table3" => table3::run(&opts),
        "table4" => table4::run(&opts),
        "table5" => table5::run(&opts),
        "hwcost" => hwcost::run(&opts),
        "sweep" => sweep::run(&opts),
        "penalty" => penalty::run_experiment(&opts),
        "policies" => policies::run_experiment(&opts),
        "all" => {
            table1::run(&opts);
            fig3::run(&opts);
            table2::run(&opts);
            table3::run(&opts);
            table4::run(&opts);
            table5::run(&opts);
            hwcost::run(&opts);
            sweep::run(&opts);
            penalty::run_experiment(&opts);
            policies::run_experiment(&opts);
        }
        other => die(&format!("unknown subcommand: {other}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: experiments <table1|fig3|table2|table3|table4|table5|hwcost|sweep|penalty|policies|all> [--paper-scale] [--extended (table1/table5)] [--threads N] [--json DIR (fig3/table2)]");
    std::process::exit(2);
}
