//! Throughput and cost-savings driver for the concurrent `csr-cache`
//! key-value cache (run with `cargo bench --bench cache_throughput`).
//!
//! Two tables:
//!
//! * **ops/sec vs shard count** — N threads hammer a cache-aside Zipf
//!   workload while the shard count sweeps from 1 (one global lock) to 32;
//!   the knee shows where lock contention stops being the bottleneck.
//! * **aggregate miss cost vs policy** — a single-threaded replay of a
//!   skewed-cost Zipf stream at equal capacity, reporting each policy's
//!   cost savings over the sharded-LRU baseline (the paper's Figure 5
//!   metric, translated to a software cache).
//!
//! Pass `-- --json DIR` (or set `BENCH_JSON_DIR`) to also write both
//! tables as `DIR/BENCH_cache_throughput.json` via the `csr-obs` JSON
//! exporter.

use csr_bench::{report, ExperimentOpts};
use csr_cache::{CsrCache, Policy};
use csr_obs::Json;
use mem_trace::workloads::synthetic::ZipfRandom;
use mem_trace::workloads::Workload;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 250_000;
const CAPACITY: usize = 4096;
const FOOTPRINT: usize = 32_768;
const EXPENSIVE_COST: u64 = 32;

fn cost_of(key: u64) -> u64 {
    if key.is_multiple_of(16) {
        EXPENSIVE_COST
    } else {
        1
    }
}

fn zipf_keys(refs: usize, seed: u64) -> Vec<u64> {
    let w = ZipfRandom {
        refs,
        blocks: FOOTPRINT,
        exponent: 0.9,
        write_fraction: 0.0,
    };
    w.generate(seed).iter().map(|r| r.block(64).0).collect()
}

/// Cache-aside loop: `threads` workers each replay a pre-generated slice.
fn throughput(policy: Policy, shards: usize, threads: usize, keys: &Arc<Vec<Vec<u64>>>) -> f64 {
    let cache: Arc<CsrCache<u64, u64>> = Arc::new(
        CsrCache::builder(CAPACITY)
            .shards(shards)
            .policy(policy)
            .cost_fn(|k: &u64, _v: &u64| cost_of(*k))
            .build(),
    );
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let keys = Arc::clone(keys);
            thread::spawn(move || {
                for &k in &keys[t] {
                    if cache.get(&k).is_none() {
                        cache.insert(k, k);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let secs = start.elapsed().as_secs_f64();
    (threads * OPS_PER_THREAD) as f64 / secs
}

/// `--json DIR` from the bench's own args, falling back to the
/// `BENCH_JSON_DIR` environment variable.
fn json_dir() -> Option<std::path::PathBuf> {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--json" {
            return Some(it.next().expect("--json needs a directory").into());
        }
    }
    std::env::var_os("BENCH_JSON_DIR").map(Into::into)
}

fn main() {
    let opts = ExperimentOpts {
        json_dir: json_dir(),
        ..ExperimentOpts::default()
    };
    let mut throughput_rows = Vec::new();
    let mut cost_rows = Vec::new();
    println!(
        "generating {} Zipf streams of {} refs ...",
        THREADS, OPS_PER_THREAD
    );
    let streams: Arc<Vec<Vec<u64>>> = Arc::new(
        (0..THREADS)
            .map(|t| zipf_keys(OPS_PER_THREAD, 0xBEEF + t as u64))
            .collect(),
    );

    println!(
        "\n=== Throughput: {} threads, capacity {}, footprint {} (Mops/s) ===",
        THREADS, CAPACITY, FOOTPRINT
    );
    println!("{:<8} {:>10} {:>10}", "shards", "LRU", "DCL");
    for shards in [1usize, 2, 4, 8, 16, 32] {
        let lru = throughput(Policy::Lru, shards, THREADS, &streams);
        let dcl = throughput(Policy::Dcl, shards, THREADS, &streams);
        println!("{:<8} {:>10.2} {:>10.2}", shards, lru / 1e6, dcl / 1e6);
        throughput_rows.push(Json::obj([
            ("shards", Json::uint(shards as u64)),
            ("threads", Json::uint(THREADS as u64)),
            ("lru_ops_per_sec", Json::Float(lru)),
            ("dcl_ops_per_sec", Json::Float(dcl)),
        ]));
    }

    println!(
        "\n=== Aggregate miss cost vs sharded LRU (1 thread, {} refs, 1/16 keys cost {}x) ===",
        4 * OPS_PER_THREAD,
        EXPENSIVE_COST
    );
    let keys = zipf_keys(4 * OPS_PER_THREAD, 0xC05E);
    let mut baseline = 0u64;
    println!(
        "{:<8} {:>14} {:>12} {:>10} {:>12}",
        "policy", "miss cost", "savings %", "hit rate", "reservations"
    );
    for policy in Policy::ALL {
        let cache: CsrCache<u64, u64> = CsrCache::builder(CAPACITY)
            .shards(8)
            .policy(policy)
            .cost_fn(|k: &u64, _v: &u64| cost_of(*k))
            .build();
        for &k in &keys {
            if cache.get(&k).is_none() {
                cache.insert(k, k);
            }
        }
        let s = cache.stats();
        if policy == Policy::Lru {
            baseline = s.aggregate_miss_cost;
        }
        let savings = 100.0 * (baseline as f64 - s.aggregate_miss_cost as f64) / baseline as f64;
        println!(
            "{:<8} {:>14} {:>12.2} {:>10.3} {:>12}",
            policy.name(),
            s.aggregate_miss_cost,
            savings,
            s.hit_rate(),
            s.reservations
        );
        cost_rows.push(Json::obj([
            ("policy", Json::str(policy.name())),
            ("aggregate_miss_cost", Json::uint(s.aggregate_miss_cost)),
            ("savings_pct", Json::Float(savings)),
            ("hit_rate", Json::Float(s.hit_rate())),
            ("mean_miss_cost", Json::Float(s.mean_miss_cost())),
            ("reservations", Json::uint(s.reservations)),
        ]));
    }

    let data = Json::obj([
        ("throughput", Json::Arr(throughput_rows)),
        ("miss_cost", Json::Arr(cost_rows)),
    ]);
    report::write_report(
        &opts,
        "cache_throughput",
        &report::envelope("cache_throughput", &opts, data),
    );
}
