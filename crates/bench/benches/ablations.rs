//! Ablation studies of the design choices DESIGN.md calls out (run with
//! `cargo bench --bench ablations`; prints tables rather than timings):
//!
//! * BCL/DCL depreciation factor — the paper picks 2× ("hedges the bet");
//! * ETD capacity — the paper proves s-1 entries suffice;
//! * ETD tag width — aliasing vs full tags (Section 4.3).

use cache_sim::{relative_savings_pct, ReplacementPolicy};
use csr::etd::EtdConfig;
use csr::{Bcl, Dcl};
use csr_harness::{
    build_benchmarks, run_sampled_policy, Benchmark, LruMissProfile, Scale, TraceSimConfig,
};
use mem_trace::cost_map::{CostMap, RandomCostMap};

fn run_policy<P: ReplacementPolicy>(
    bench: &Benchmark,
    costs: &dyn CostMap,
    cfg: TraceSimConfig,
    policy: P,
) -> cache_sim::Cost {
    run_sampled_policy(&bench.sampled, costs, policy, cfg)
        .1
        .aggregate_cost
}

fn main() {
    let cfg = TraceSimConfig::paper_basic();
    let geom = cfg.l2;
    println!("building benchmarks ...");
    let benchmarks = build_benchmarks(Scale::Quick);
    let map = RandomCostMap::new(0.2, cache_sim::CostPair::ratio(8), 77);

    println!("\n=== Ablation: depreciation factor (savings over LRU, %, HAF=0.2 r=8) ===");
    println!(
        "{:<10} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "benchmark", "BCL x1", "BCL x2", "BCL x4", "DCL x1", "DCL x2", "DCL x4"
    );
    for b in &benchmarks {
        let base = LruMissProfile::collect(&b.sampled, cfg).aggregate_cost(&map);
        let sav = |c: cache_sim::Cost| relative_savings_pct(base, c);
        let bcl: Vec<f64> = [1u64, 2, 4]
            .iter()
            .map(|&f| {
                sav(run_policy(
                    b,
                    &map,
                    cfg,
                    Bcl::with_depreciation_factor(&geom, f),
                ))
            })
            .collect();
        let dcl: Vec<f64> = [1u64, 2, 4]
            .iter()
            .map(|&f| {
                sav(run_policy(
                    b,
                    &map,
                    cfg,
                    Dcl::new(&geom).with_depreciation_factor(f),
                ))
            })
            .collect();
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
            b.name, bcl[0], bcl[1], bcl[2], dcl[0], dcl[1], dcl[2]
        );
    }

    println!("\n=== Ablation: ETD entries per set (DCL savings over LRU, %) ===");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "1", "2", "3 (s-1)", "7"
    );
    for b in &benchmarks {
        let base = LruMissProfile::collect(&b.sampled, cfg).aggregate_cost(&map);
        let row: Vec<f64> = [1usize, 2, 3, 7]
            .iter()
            .map(|&n| {
                let etd = EtdConfig {
                    entries_per_set: n,
                    tag_bits: None,
                };
                let c = run_policy(b, &map, cfg, Dcl::with_etd_config(&geom, etd));
                relative_savings_pct(base, c)
            })
            .collect();
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            b.name, row[0], row[1], row[2], row[3]
        );
    }

    println!("\n=== Ablation: ETD tag width (DCL savings over LRU, %; false-match rate) ===");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "2 bits", "4 bits", "8 bits", "full"
    );
    for b in &benchmarks {
        let base = LruMissProfile::collect(&b.sampled, cfg).aggregate_cost(&map);
        let mut cells = Vec::new();
        for bits in [Some(2u32), Some(4), Some(8), None] {
            let etd = EtdConfig {
                entries_per_set: 3,
                tag_bits: bits,
            };
            let mut h = cache_sim::TwoLevel::new(cfg.l1, cfg.l2, Dcl::with_etd_config(&geom, etd));
            let bb = cfg.l2.block_bytes();
            for ev in b.sampled.events() {
                match *ev {
                    mem_trace::SampledEvent::Own { addr, op } => {
                        let block = addr.block(bb);
                        h.access(block, op, map.cost_of(block));
                    }
                    mem_trace::SampledEvent::ForeignWrite { addr } => h.invalidate(addr.block(bb)),
                }
            }
            let sav = relative_savings_pct(base, h.l2().stats().aggregate_cost);
            let fm = h.l2().policy().etd_stats().false_match_rate() * 100.0;
            cells.push(format!("{sav:+.2}% ({fm:.0}%fm)"));
        }
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            b.name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("\n(paper: 4-bit aliasing changes results only marginally; Section 4.3)");
}
