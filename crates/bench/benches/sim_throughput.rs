//! Criterion bench: end-to-end simulator throughput — the trace-driven
//! hierarchy (references/second) and the event-driven NUMA machine
//! (references/second through the full protocol).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csr_harness::{run_sampled, PolicyKind, TraceSimConfig};
use mem_trace::cost_map::RandomCostMap;
use mem_trace::workloads::OceanLike;
use mem_trace::{ProcId, SampledTrace, Workload};
use numa_sim::Clock;
use std::hint::black_box;

fn bench_trace_driven(c: &mut Criterion) {
    let w = OceanLike { n: 130, grids: 3, procs: 16, iters: 3, col_stride: 2, reduction_points: 256 };
    let trace = w.generate(7);
    let sampled = SampledTrace::from_trace(&trace, ProcId(3));
    let map = RandomCostMap::new(0.2, cache_sim::CostPair::ratio(8), 5);
    let cfg = TraceSimConfig::paper_basic();

    let mut group = c.benchmark_group("trace_driven");
    group.throughput(Throughput::Elements(sampled.events().len() as u64));
    for kind in [PolicyKind::Lru, PolicyKind::Dcl] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| black_box(run_sampled(&sampled, &map, kind, cfg)));
        });
    }
    group.finish();
}

fn bench_numa(c: &mut Criterion) {
    let w = OceanLike { n: 66, grids: 2, procs: 16, iters: 2, col_stride: 2, reduction_points: 64 };
    let pt = w.generate_phases(7);

    let mut group = c.benchmark_group("numa_sim");
    group.throughput(Throughput::Elements(pt.total_refs() as u64));
    for kind in [PolicyKind::Lru, PolicyKind::Dcl] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                black_box(csr_harness::numa_exp::run_numa(&pt, Clock::Mhz500, kind).exec_time_ps)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_driven, bench_numa
}
criterion_main!(benches);
