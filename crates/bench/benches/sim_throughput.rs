//! End-to-end simulator throughput — the trace-driven hierarchy
//! (references/second) and the event-driven NUMA machine
//! (references/second through the full protocol).
//!
//! Run with `cargo bench --bench sim_throughput`. Dependency-free: each
//! configuration runs a few passes and the best wall-clock pass wins.

use csr_harness::{run_sampled, PolicyKind, TraceSimConfig};
use mem_trace::cost_map::RandomCostMap;
use mem_trace::workloads::OceanLike;
use mem_trace::{ProcId, SampledTrace, Workload};
use numa_sim::Clock;
use std::hint::black_box;
use std::time::Instant;

const PASSES: usize = 3;

fn best_of<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let w = OceanLike {
        n: 130,
        grids: 3,
        procs: 16,
        iters: 3,
        col_stride: 2,
        reduction_points: 256,
    };
    let trace = w.generate(7);
    let sampled = SampledTrace::from_trace(&trace, ProcId(3));
    let map = RandomCostMap::new(0.2, cache_sim::CostPair::ratio(8), 5);
    let cfg = TraceSimConfig::paper_basic();

    println!(
        "trace_driven: {} events, best of {PASSES} passes",
        sampled.events().len()
    );
    println!("{:<8} {:>14}", "policy", "Mrefs/s");
    for kind in [PolicyKind::Lru, PolicyKind::Dcl] {
        let secs = best_of(|| {
            black_box(run_sampled(&sampled, &map, kind, cfg));
        });
        println!(
            "{:<8} {:>14.2}",
            kind.label(),
            sampled.events().len() as f64 / secs / 1e6
        );
    }

    let w = OceanLike {
        n: 66,
        grids: 2,
        procs: 16,
        iters: 2,
        col_stride: 2,
        reduction_points: 64,
    };
    let pt = w.generate_phases(7);
    println!(
        "\nnuma_sim: {} refs, best of {PASSES} passes",
        pt.total_refs()
    );
    println!("{:<8} {:>14}", "policy", "Mrefs/s");
    for kind in [PolicyKind::Lru, PolicyKind::Dcl] {
        let secs = best_of(|| {
            black_box(csr_harness::numa_exp::run_numa(&pt, Clock::Mhz500, kind).exec_time_ps);
        });
        println!(
            "{:<8} {:>14.2}",
            kind.label(),
            pt.total_refs() as f64 / secs / 1e6
        );
    }
}
