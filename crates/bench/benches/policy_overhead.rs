//! Criterion bench: per-access decision overhead of each replacement
//! policy (Section 5 argues the algorithms add negligible cycle-time cost;
//! this measures their software-simulation analogue).

use cache_sim::{AccessType, BlockAddr, Cache, Cost, Geometry};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use csr_harness::PolicyKind;
use mem_trace::workloads::synthetic::ZipfRandom;
use mem_trace::Workload;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let geom = Geometry::new(16 * 1024, 64, 4);
    let trace = ZipfRandom { refs: 100_000, blocks: 8192, exponent: 0.9, write_fraction: 0.2 }
        .generate(42);
    let accesses: Vec<(BlockAddr, AccessType, Cost)> = trace
        .iter()
        .map(|r| {
            let b = r.block(64);
            let cost = if b.0 % 5 == 0 { Cost(8) } else { Cost(1) };
            (b, r.op, cost)
        })
        .collect();

    let mut group = c.benchmark_group("policy_overhead");
    group.throughput(Throughput::Elements(accesses.len() as u64));
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Gd,
        PolicyKind::Bcl,
        PolicyKind::Dcl,
        PolicyKind::DclAliased(4),
        PolicyKind::Acl,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let mut cache = Cache::new(geom, kind.build(&geom));
                for &(block, op, cost) in &accesses {
                    black_box(cache.access(block, op, cost));
                }
                black_box(cache.stats().aggregate_cost)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policies
}
criterion_main!(benches);
