//! Per-access decision overhead of each replacement policy (Section 5
//! argues the algorithms add negligible cycle-time cost; this measures
//! their software-simulation analogue).
//!
//! Run with `cargo bench --bench policy_overhead`. A dependency-free
//! driver: each policy replays the same Zipf trace a few times and the
//! best wall-clock pass is reported as ns/access and Maccesses/s.

use cache_sim::{AccessType, BlockAddr, Cache, Cost, Geometry};
use csr_harness::PolicyKind;
use mem_trace::workloads::synthetic::ZipfRandom;
use mem_trace::Workload;
use std::hint::black_box;
use std::time::Instant;

const PASSES: usize = 5;

fn main() {
    let geom = Geometry::new(16 * 1024, 64, 4);
    let trace = ZipfRandom {
        refs: 100_000,
        blocks: 8192,
        exponent: 0.9,
        write_fraction: 0.2,
    }
    .generate(42);
    let accesses: Vec<(BlockAddr, AccessType, Cost)> = trace
        .iter()
        .map(|r| {
            let b = r.block(64);
            let cost = if b.0 % 5 == 0 { Cost(8) } else { Cost(1) };
            (b, r.op, cost)
        })
        .collect();

    println!(
        "policy_overhead: {} accesses x {PASSES} passes per policy",
        accesses.len()
    );
    println!("{:<12} {:>12} {:>14}", "policy", "ns/access", "Maccesses/s");
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Gd,
        PolicyKind::Bcl,
        PolicyKind::Dcl,
        PolicyKind::DclAliased(4),
        PolicyKind::Acl,
    ] {
        let mut best = f64::INFINITY;
        for _ in 0..PASSES {
            let mut cache = Cache::new(geom, kind.build(&geom));
            let start = Instant::now();
            for &(block, op, cost) in &accesses {
                black_box(cache.access(block, op, cost));
            }
            let elapsed = start.elapsed().as_secs_f64();
            black_box(cache.stats().aggregate_cost);
            best = best.min(elapsed);
        }
        let per_access_ns = best * 1e9 / accesses.len() as f64;
        let maccesses = accesses.len() as f64 / best / 1e6;
        println!(
            "{:<12} {:>12.1} {:>14.2}",
            kind.label(),
            per_access_ns,
            maccesses
        );
    }
}
