//! The discrete-event engine.

use crate::config::Time;
use crate::msg::Msg;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events dispatched by the simulator.
#[derive(Debug, Clone)]
pub enum Event {
    /// Resume the CPU of a node (after a stall resolved or a barrier).
    CpuResume(usize),
    /// A protocol message arrives at its destination.
    MsgArrive(Msg),
}

#[derive(Debug)]
struct Scheduled {
    time: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        // Sequence numbers break ties deterministically (FIFO).
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: Event) {
        self.seq += 1;
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::CpuResume(3));
        q.push(10, Event::CpuResume(1));
        q.push(20, Event::CpuResume(2));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(10, Event::CpuResume(1));
        q.push(10, Event::CpuResume(2));
        match (q.pop(), q.pop()) {
            (Some((_, Event::CpuResume(a))), Some((_, Event::CpuResume(b)))) => {
                assert_eq!((a, b), (1, 2));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
