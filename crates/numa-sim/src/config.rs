//! System configuration (Table 4 of the paper).
//!
//! All latency parameters are stored in nanoseconds; simulated time is kept
//! in picoseconds so the 500 MHz (2000 ps) and 1 GHz (1000 ps) processor
//! clocks divide evenly. The constants are tuned so the *unloaded minimum*
//! miss latencies match Table 4: local clean ≈ 120 ns, remote clean
//! ≈ 380 ns, remote dirty ≈ 480 ns (remote-to-local ratio ≈ 3).

use cache_sim::Geometry;

/// Simulated time in picoseconds.
pub type Time = u64;

/// Converts nanoseconds to simulation time.
#[must_use]
pub const fn ns(v: u64) -> Time {
    v * 1000
}

/// Processor clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Clock {
    /// 500 MHz (2 ns per cycle).
    Mhz500,
    /// 1 GHz (1 ns per cycle).
    Ghz1,
}

impl Clock {
    /// Picoseconds per processor cycle.
    #[must_use]
    pub const fn cycle_ps(self) -> Time {
        match self {
            Clock::Mhz500 => 2000,
            Clock::Ghz1 => 1000,
        }
    }

    /// Human-readable label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Clock::Mhz500 => "500MHz",
            Clock::Ghz1 => "1GHz",
        }
    }
}

/// How a measured miss is converted into the miss *cost* stored with the
/// filled block (the prediction of its next miss cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostMode {
    /// The raw measured (loaded) latency in ns. Faithful to Section 4.1's
    /// timestamp measurement, but noisy: transient queueing inflates costs
    /// and can trigger unproductive reservations.
    Measured,
    /// The measured latency rounded to multiples of `G` ns (Section 5
    /// proposes G = 60 ns, the GCD of the Table 4 latencies), which
    /// suppresses queueing noise while preserving the locality classes.
    Quantized(u64),
    /// The analytic unloaded latency of the transaction (Section 5's
    /// table-lookup alternative): perfectly stable per (block, transaction
    /// type).
    Unloaded,
    /// The miss *penalty*: the portion of the measured latency during which
    /// the CPU was actually stalled on this miss, quantized to `G` ns with
    /// a one-quantum floor (so fully-overlapped misses keep a nonzero
    /// cost); nearest-quantum rounding may exceed the raw measured value by
    /// up to `G/2`. Attribution is first-reliever: when several misses
    /// overlap one stall window, the fill that ends it absorbs the whole
    /// window (capped at its own latency).
    /// This is the paper's Section 7 outlook — "measure memory access
    /// penalty instead of latency and use the penalty as the target cost
    /// function" — so stores and well-overlapped loads stop competing with
    /// pipeline-blocking misses for cache residency.
    Penalty(u64),
}

impl CostMode {
    /// Converts a measured latency, the transaction's unloaded latency and
    /// the CPU-stall time attributed to the miss (all ns) into a stored
    /// cost value.
    #[must_use]
    pub fn cost_of(self, measured_ns: u64, unloaded_ns: u64, penalty_ns: u64) -> u64 {
        match self {
            CostMode::Measured => measured_ns,
            CostMode::Quantized(g) => {
                let g = g.max(1);
                (measured_ns + g / 2) / g * g
            }
            CostMode::Unloaded => unloaded_ns,
            CostMode::Penalty(g) => {
                let g = g.max(1);
                let clamped = penalty_ns.min(measured_ns).max(g);
                (clamped + g / 2) / g * g
            }
        }
    }
}

/// Full machine configuration (defaults = Table 4).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of processor nodes (must be a square for the mesh).
    pub num_nodes: usize,
    /// Processor clock.
    pub clock: Clock,
    /// L1 geometry (4 KB direct-mapped, 64 B blocks).
    pub l1: Geometry,
    /// L2 geometry (16 KB 4-way, 64 B blocks).
    pub l2: Geometry,
    /// L1 access latency in processor cycles.
    pub l1_cycles: u64,
    /// L2 access latency in processor cycles.
    pub l2_cycles: u64,
    /// MSHRs per L2 cache.
    pub mshrs: usize,
    /// Maximum overlapped outstanding loads before the CPU stalls (models
    /// the finite active list / address queue of the ILP core).
    pub max_load_overlap: usize,
    /// Main-memory access time in ns (Table 4: 60 ns).
    pub mem_ns: u64,
    /// Cache/directory controller occupancy per protocol action, ns.
    pub ctrl_ns: u64,
    /// Network-interface traversal, ns (each end of a remote message).
    pub ni_ns: u64,
    /// Router pipeline latency per hop, ns.
    pub router_ns: u64,
    /// Flit transfer time on a link, ns (Table 4: 6 ns, 64-bit links).
    pub flit_ns: u64,
    /// Flits of a control message (header + address).
    pub control_flits: u64,
    /// Flits of a data message (header + 64-byte block on 64-bit links).
    pub data_flits: u64,
    /// Barrier release overhead, ns.
    pub barrier_ns: u64,
    /// How measured latencies become stored miss costs.
    pub cost_mode: CostMode,
    /// Whether clean evictions notify the home directory (Table 4 uses the
    /// MESI protocol *with* replacement hints; the paper's Table 3 is
    /// measured on the protocol *without* them, where sharer sets go stale
    /// and invalidations may chase departed copies).
    pub replacement_hints: bool,
}

impl SystemConfig {
    /// The paper's Table 4 baseline at the given clock.
    #[must_use]
    pub fn table4(clock: Clock) -> Self {
        SystemConfig {
            num_nodes: 16,
            clock,
            l1: Geometry::direct_mapped(4 * 1024, 64),
            l2: Geometry::new(16 * 1024, 64, 4),
            l1_cycles: 1,
            l2_cycles: 6,
            mshrs: 8,
            max_load_overlap: 8,
            mem_ns: 60,
            ctrl_ns: 16,
            ni_ns: 40,
            router_ns: 20,
            flit_ns: 6,
            control_flits: 2,
            data_flits: 10,
            barrier_ns: 600,
            cost_mode: CostMode::Quantized(60),
            replacement_hints: true,
        }
    }

    /// Picoseconds per processor cycle.
    #[must_use]
    pub fn cycle_ps(&self) -> Time {
        self.clock.cycle_ps()
    }

    /// Mesh side length.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is not a perfect square.
    #[must_use]
    pub fn mesh_side(&self) -> usize {
        let side = (self.num_nodes as f64).sqrt().round() as usize;
        assert_eq!(
            side * side,
            self.num_nodes,
            "mesh requires a square node count"
        );
        side
    }

    /// XY hop distance between two nodes.
    #[must_use]
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        let side = self.mesh_side();
        let (ax, ay) = (a % side, a / side);
        let (bx, by) = (b % side, b / side);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// Unloaded one-way latency of a message of `flits` flits, ns.
    #[must_use]
    pub fn unloaded_msg_ns(&self, from: usize, to: usize, flits: u64) -> u64 {
        if from == to {
            return 0;
        }
        let hops = self.hops(from, to);
        2 * self.ni_ns + hops * (self.router_ns + flits * self.flit_ns)
    }

    /// Cache-side latency before a request leaves the node (L1 + L2 probe),
    /// ns (clock dependent).
    #[must_use]
    pub fn probe_ns(&self) -> u64 {
        (self.l1_cycles + self.l2_cycles) * self.cycle_ps() / 1000
    }

    /// Analytic unloaded miss latency in ns for a 2-hop (memory-served)
    /// transaction: requester → home → memory → requester.
    #[must_use]
    pub fn unloaded_clean_ns(&self, requester: usize, home: usize) -> u64 {
        self.probe_ns()
            + self.ctrl_ns
            + self.unloaded_msg_ns(requester, home, self.control_flits)
            + self.ctrl_ns
            + self.mem_ns
            + self.unloaded_msg_ns(home, requester, self.data_flits)
            + self.ctrl_ns
    }

    /// Analytic unloaded miss latency in ns for a 3-hop (owner-served)
    /// transaction: requester → home → owner → requester.
    #[must_use]
    pub fn unloaded_dirty_ns(&self, requester: usize, home: usize, owner: usize) -> u64 {
        self.probe_ns()
            + self.ctrl_ns
            + self.unloaded_msg_ns(requester, home, self.control_flits)
            + self.ctrl_ns
            + self.unloaded_msg_ns(home, owner, self.control_flits)
            + self.ctrl_ns
            + self.unloaded_msg_ns(owner, requester, self.data_flits)
            + self.ctrl_ns
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::table4(Clock::Mhz500)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_cycles() {
        assert_eq!(Clock::Mhz500.cycle_ps(), 2000);
        assert_eq!(Clock::Ghz1.cycle_ps(), 1000);
    }

    #[test]
    fn cost_modes_convert_consistently() {
        assert_eq!(CostMode::Measured.cost_of(383, 380, 100), 383);
        assert_eq!(CostMode::Quantized(60).cost_of(383, 380, 100), 360);
        assert_eq!(CostMode::Unloaded.cost_of(383, 380, 100), 380);
        // Penalty: quantized stall share, floored at one quantum and capped
        // by the measured latency.
        assert_eq!(CostMode::Penalty(60).cost_of(383, 380, 100), 120);
        assert_eq!(CostMode::Penalty(60).cost_of(383, 380, 0), 60, "floor");
        assert_eq!(
            CostMode::Penalty(60).cost_of(90, 380, 500),
            120,
            "capped at measured (90), then rounded to nearest quantum"
        );
    }

    #[test]
    fn mesh_hops() {
        let c = SystemConfig::default();
        assert_eq!(c.mesh_side(), 4);
        assert_eq!(c.hops(0, 0), 0);
        assert_eq!(c.hops(0, 1), 1);
        assert_eq!(c.hops(0, 15), 6); // (0,0) -> (3,3)
        assert_eq!(c.hops(5, 6), 1);
    }

    #[test]
    fn unloaded_minimums_match_table4() {
        let c = SystemConfig::table4(Clock::Mhz500);
        // Local clean: ~120 ns.
        let local = c.unloaded_clean_ns(0, 0);
        assert!(
            (local as f64 - 120.0).abs() / 120.0 < 0.10,
            "local clean {local} ns (target 120)"
        );
        // Remote clean minimum (nearest neighbour): ~380 ns.
        let remote = c.unloaded_clean_ns(0, 1);
        assert!(
            (remote as f64 - 380.0).abs() / 380.0 < 0.10,
            "remote clean {remote} ns (target 380)"
        );
        // Remote dirty minimum: ~480 ns. The tightest triangle in a mesh
        // has the home one hop from the requester, the owner one hop from
        // the requester and two from the home (e.g. nodes 0, 1, 4).
        let dirty = c.unloaded_dirty_ns(0, 1, 4);
        assert!(
            (dirty as f64 - 480.0).abs() / 480.0 < 0.10,
            "remote dirty {dirty} ns (target 480)"
        );
        // Remote-to-local ratio around 3 (Section 4.2).
        let ratio = remote as f64 / local as f64;
        assert!((2.5..=3.7).contains(&ratio), "ratio {ratio}");
    }
}
