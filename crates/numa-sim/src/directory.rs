//! Per-node MESI directory state (with replacement hints, Table 4).
//!
//! Each node is the *home* for the blocks first-touched by its processor.
//! The home serializes transactions per block: while a transaction is
//! pending, later requests queue at the home (home-side queueing in place
//! of NACK/retry — a simplification that preserves latency ordering
//! without modelling the full race matrix of an SGI-Origin-style protocol).

use crate::config::Time;
use crate::msg::{HomeState, Msg};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Directory sharing state of one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies.
    Uncached,
    /// Read-only copies at the listed nodes.
    Shared(BTreeSet<usize>),
    /// One exclusive (possibly dirty) copy.
    Exclusive(usize),
}

impl DirState {
    /// The Table 3 classification of this state.
    #[must_use]
    pub fn classify(&self) -> HomeState {
        match self {
            DirState::Uncached => HomeState::Uncached,
            DirState::Shared(_) => HomeState::Shared,
            DirState::Exclusive(_) => HomeState::Exclusive,
        }
    }
}

/// An in-flight transaction at the home.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The request being served.
    pub msg: Msg,
    /// Invalidation acks still outstanding.
    pub acks_outstanding: usize,
    /// When the memory read started alongside invalidations will complete
    /// (0 when no memory read is in flight).
    pub mem_ready: Time,
    /// The owner was found without the block (its writeback is in flight);
    /// the transaction completes when the writeback arrives.
    pub awaiting_wb: bool,
    /// Directory state observed when the request was accepted.
    pub state_seen: HomeState,
    /// Previous exclusive owner (for 3-hop classification).
    pub prev_owner: usize,
    /// Completion acknowledgements still outstanding (grant ack from the
    /// requester, plus the owner ack for 3-hop transactions).
    pub remaining: usize,
}

/// Directory entry for one block.
#[derive(Debug, Clone)]
pub struct DirEntry {
    /// Sharing state.
    pub state: DirState,
    /// Active transaction, if any.
    pub pending: Option<Pending>,
    /// Requests queued behind the active transaction.
    pub queue: VecDeque<Msg>,
    /// A writeback arrived while a transaction was in flight and has been
    /// applied to memory; a subsequent `FetchNack` completes immediately.
    pub wb_banked: bool,
}

impl Default for DirEntry {
    fn default() -> Self {
        DirEntry {
            state: DirState::Uncached,
            pending: None,
            queue: VecDeque::new(),
            wb_banked: false,
        }
    }
}

/// The directory of one home node.
#[derive(Debug, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new() -> Self {
        Directory::default()
    }

    /// The entry for `block`, created Uncached on first touch.
    pub fn entry(&mut self, block: u64) -> &mut DirEntry {
        self.entries.entry(block).or_default()
    }

    /// Read-only view (tests).
    #[must_use]
    pub fn peek(&self, block: u64) -> Option<&DirEntry> {
        self.entries.get(&block)
    }

    /// Number of tracked blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no blocks are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_defaults_uncached() {
        let mut d = Directory::new();
        let e = d.entry(42);
        assert_eq!(e.state, DirState::Uncached);
        assert!(e.pending.is_none());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn classify_states() {
        assert_eq!(DirState::Uncached.classify(), HomeState::Uncached);
        assert_eq!(
            DirState::Shared(BTreeSet::new()).classify(),
            HomeState::Shared
        );
        assert_eq!(DirState::Exclusive(3).classify(), HomeState::Exclusive);
    }
}
