//! The 4×4 mesh interconnect (Table 4: 64-bit links, 6 ns flit delay).
//!
//! XY dimension-order routing with store-and-forward timing and per-link
//! occupancy: each directed link is busy for `flits × flit_ns` per message,
//! so contention delays messages that share links. (Real wormhole routing
//! pipelines flits across hops; store-and-forward is conservative but
//! preserves the relative load behaviour the experiments depend on.)
//!
//! Link windows are reserved in *call* order, and CPUs run ahead of global
//! time in bursts, so a message with an earlier departure can occasionally
//! queue behind a window reserved for a later one. The distortion is
//! bounded by burst lengths (a burst ends at the first L2 miss), fully
//! deterministic, and second-order relative to the serialization and
//! occupancy effects being modelled.

use crate::config::{SystemConfig, Time};
use std::collections::HashMap;

/// The mesh network state (link occupancy).
#[derive(Debug, Default)]
pub struct Mesh {
    /// busy-until time per directed link (from, to).
    links: HashMap<(usize, usize), Time>,
    /// Accumulated statistics.
    stats: MeshStats,
}

/// Counters for the interconnect.
#[derive(Debug, Default, Clone, Copy)]
pub struct MeshStats {
    /// Messages transferred (excluding node-local ones).
    pub messages: u64,
    /// Flits transferred across all links.
    pub flits: u64,
    /// Total queueing delay (ps) accumulated behind busy links.
    pub contention_ps: u64,
}

impl Mesh {
    /// Creates an idle mesh.
    #[must_use]
    pub fn new() -> Self {
        Mesh::default()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    /// The XY route from `a` to `b` as a list of node indices.
    fn route(cfg: &SystemConfig, a: usize, b: usize) -> Vec<usize> {
        let side = cfg.mesh_side();
        let (mut x, y0) = (a % side, a / side);
        let (bx, by) = (b % side, b / side);
        let mut path = vec![a];
        while x != bx {
            x = if x < bx { x + 1 } else { x - 1 };
            path.push(y0 * side + x);
        }
        let mut y = y0;
        while y != by {
            y = if y < by { y + 1 } else { y - 1 };
            path.push(y * side + x);
        }
        path
    }

    /// Sends a message of `flits` flits from `from` to `to`, departing at
    /// `depart`. Returns the arrival time, accounting for NI, router and
    /// link-occupancy delays. Node-local messages arrive instantly.
    pub fn send(
        &mut self,
        cfg: &SystemConfig,
        from: usize,
        to: usize,
        flits: u64,
        depart: Time,
    ) -> Time {
        if from == to {
            return depart;
        }
        let path = Self::route(cfg, from, to);
        let mut t = depart + cfg.ni_ns * 1000;
        for pair in path.windows(2) {
            let link = (pair[0], pair[1]);
            let busy = self.links.entry(link).or_insert(0);
            let start = t.max(*busy);
            self.stats.contention_ps += start - t;
            let occupancy = flits * cfg.flit_ns * 1000;
            *busy = start + occupancy;
            t = start + occupancy + cfg.router_ns * 1000;
        }
        self.stats.messages += 1;
        self.stats.flits += flits * (path.len() as u64 - 1);
        t + cfg.ni_ns * 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ns, Clock};

    fn cfg() -> SystemConfig {
        SystemConfig::table4(Clock::Mhz500)
    }

    #[test]
    fn local_is_free() {
        let mut m = Mesh::new();
        assert_eq!(m.send(&cfg(), 3, 3, 10, 12345), 12345);
        assert_eq!(m.stats().messages, 0);
    }

    #[test]
    fn unloaded_latency_matches_analytic_model() {
        let cfg = cfg();
        let mut m = Mesh::new();
        for (from, to) in [(0usize, 1usize), (0, 15), (5, 10)] {
            for flits in [2u64, 10] {
                let arrival = m.send(&cfg, from, to, flits, 0);
                // A fresh path per test pair would be unloaded; this mesh has
                // seen earlier sends, so allow equality-or-later and check
                // the first (cold) send against the analytic formula.
                let analytic = ns(cfg.unloaded_msg_ns(from, to, flits));
                assert!(arrival >= analytic, "{from}->{to}");
            }
        }
        // A genuinely cold link: exact match.
        let mut fresh = Mesh::new();
        let arrival = fresh.send(&cfg, 0, 1, 2, 0);
        assert_eq!(arrival, ns(cfg.unloaded_msg_ns(0, 1, 2)));
    }

    #[test]
    fn xy_route_shape() {
        let cfg = cfg();
        let path = Mesh::route(&cfg, 0, 15);
        assert_eq!(path, vec![0, 1, 2, 3, 7, 11, 15]);
        let path = Mesh::route(&cfg, 10, 5);
        assert_eq!(path, vec![10, 9, 5]);
    }

    #[test]
    fn contention_delays_second_message() {
        let cfg = cfg();
        let mut m = Mesh::new();
        let a = m.send(&cfg, 0, 1, 10, 0);
        let b = m.send(&cfg, 0, 1, 10, 0);
        assert!(b > a, "sharing the 0->1 link must delay the second message");
        assert!(m.stats().contention_ps > 0);
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let cfg = cfg();
        let mut m = Mesh::new();
        let a = m.send(&cfg, 0, 1, 10, 0);
        let b = m.send(&cfg, 14, 15, 10, 0);
        assert_eq!(a, b, "disjoint links should see identical latency");
    }
}
