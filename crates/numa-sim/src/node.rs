//! Per-node processor, cache and MSHR state.

use crate::config::Time;
use crate::stats::{MissClass, NodeStats, Table3Matrix};
use cache_sim::{Cache, Lru, ReplacementPolicy};
use std::collections::{HashMap, HashSet};

/// Why a CPU is not currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuState {
    /// Executing (or runnable).
    Running,
    /// Stalled: all MSHRs are in use.
    WaitMshr,
    /// Stalled: the outstanding-load limit (active list) is reached.
    WaitLoadLimit,
    /// Finished its phase stream, waiting at the barrier.
    AtBarrier,
    /// All phases complete.
    Done,
}

/// One miss-status holding register.
#[derive(Debug, Clone, Copy)]
pub struct MshrEntry {
    /// The transaction requests ownership (GetX).
    pub is_write: bool,
    /// The transaction is an ownership upgrade of a resident block.
    pub is_upgrade: bool,
    /// When the miss was detected (request issue timestamp).
    pub issue: Time,
    /// A store merged into this (read) transaction while it was in flight;
    /// ownership must still be acquired once the shared data arrives.
    pub wants_write: bool,
}

/// The boxed replacement policy used by node L2 caches.
pub type L2Policy = Box<dyn ReplacementPolicy + Send>;

/// One processor node: CPU state, L1/L2, MSHRs, prediction and statistics.
pub struct Node {
    /// Node id (also its mesh position).
    pub id: usize,
    /// Local CPU time (ps). May run ahead of global event time within a
    /// burst; never behind.
    pub cpu_time: Time,
    /// Execution state.
    pub state: CpuState,
    /// Current phase index.
    pub phase: usize,
    /// Position within the current phase stream.
    pub pos: usize,
    /// L1 cache (direct-mapped, LRU trivial).
    pub l1: Cache<Lru>,
    /// L2 cache with the pluggable (cost-sensitive) policy.
    pub l2: Cache<L2Policy>,
    /// Blocks held in exclusive (M/E) state.
    pub owned: HashSet<u64>,
    /// Outstanding transactions by block address.
    pub mshr: HashMap<u64, MshrEntry>,
    /// Loads currently outstanding (bounded by the active list model).
    pub outstanding_loads: usize,
    /// When the CPU entered its current memory stall (None while running);
    /// attributes stall time to the miss whose fill ends the stall, for
    /// penalty-based costs.
    pub stalled_since: Option<Time>,
    /// Last-miss classification per block (drives Table 3).
    pub last_miss: HashMap<u64, MissClass>,
    /// This node's Table 3 contribution.
    pub table3: Table3Matrix,
    /// Counters.
    pub stats: NodeStats,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("cpu_time", &self.cpu_time)
            .field("state", &self.state)
            .field("phase", &self.phase)
            .field("pos", &self.pos)
            .field("outstanding_loads", &self.outstanding_loads)
            .finish_non_exhaustive()
    }
}

impl Node {
    /// Creates an idle node.
    #[must_use]
    pub fn new(id: usize, l1: Cache<Lru>, l2: Cache<L2Policy>) -> Self {
        Node {
            id,
            cpu_time: 0,
            state: CpuState::Running,
            phase: 0,
            pos: 0,
            l1,
            l2,
            owned: HashSet::new(),
            mshr: HashMap::new(),
            outstanding_loads: 0,
            stalled_since: None,
            last_miss: HashMap::new(),
            table3: Table3Matrix::new(),
            stats: NodeStats::default(),
        }
    }

    /// Whether the node's CPU is stalled on a memory resource.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        matches!(self.state, CpuState::WaitMshr | CpuState::WaitLoadLimit)
    }
}
