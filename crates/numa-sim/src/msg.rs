//! Protocol messages of the MESI directory protocol with replacement hints.

use crate::config::Time;
use cache_sim::BlockAddr;

/// Directory state of a block at its home, as seen when a request was
/// processed (used for the Table 3 classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HomeState {
    /// Uncached at the home directory.
    Uncached,
    /// Shared by one or more caches.
    Shared,
    /// Exclusively owned by one cache.
    Exclusive,
}

/// Message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    // Requests (cache -> home directory).
    /// Read request.
    GetS,
    /// Read-exclusive request.
    GetX,
    /// Ownership upgrade for a block already cached shared.
    Upgrade,
    /// Replacement hint: clean shared block evicted.
    ReplHint,
    /// Dirty (owned) block written back on eviction.
    WriteBack,

    // Home -> cache.
    /// Data reply, shared grant.
    DataS,
    /// Data reply, exclusive grant.
    DataE,
    /// Upgrade acknowledgement (no data).
    UpgAck,
    /// Forwarded read: owner must supply data and downgrade.
    FetchS,
    /// Forwarded invalidate: owner must supply data and invalidate.
    FetchInval,
    /// Invalidate a shared copy.
    InvalReq,

    // Cache -> home (transaction completion).
    /// Sharer acknowledges an invalidation.
    InvalAck,
    /// Owner downgraded and forwarded data (carries dirty data home).
    DownAck,
    /// Owner invalidated and forwarded data.
    OwnerAck,
    /// Owner no longer has the block (writeback in flight).
    FetchNack,
    /// Requester confirms receipt of a grant; the home releases the block's
    /// transaction serialization (Origin-style busy-until-ack).
    GrantAck,

    // Owner -> requester (3-hop data forwarding).
    /// Forwarded data, shared grant.
    OwnerDataS,
    /// Forwarded data, exclusive grant.
    OwnerDataE,
}

impl MsgKind {
    /// Whether this message carries a data block (affects flit count).
    #[must_use]
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            MsgKind::DataS
                | MsgKind::DataE
                | MsgKind::WriteBack
                | MsgKind::OwnerDataS
                | MsgKind::OwnerDataE
                | MsgKind::DownAck
        )
    }
}

/// A protocol message in flight.
#[derive(Debug, Clone, Copy)]
pub struct Msg {
    /// Kind.
    pub kind: MsgKind,
    /// Sending node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Subject block.
    pub block: BlockAddr,
    /// The original requester of the transaction this message belongs to.
    pub requester: usize,
    /// Timestamp of the original request issue (carried end-to-end so the
    /// requester can measure the miss latency, Section 4.1).
    pub issue_ts: Time,
    /// Directory state observed at the home when the request was processed
    /// (filled in on replies; `Uncached` otherwise).
    pub home_state: HomeState,
    /// Identity of the previous exclusive owner for 3-hop transactions
    /// (`usize::MAX` when not applicable).
    pub owner: usize,
    /// Analytic unloaded latency of the whole transaction, computed by the
    /// home when it serves the request (ns). Drives the Table 3 analysis.
    pub unloaded_ns: u64,
}

impl Msg {
    /// Creates a request message from `src` about `block` to `dst`.
    #[must_use]
    pub fn request(
        kind: MsgKind,
        src: usize,
        dst: usize,
        block: BlockAddr,
        issue_ts: Time,
    ) -> Self {
        Msg {
            kind,
            src,
            dst,
            block,
            requester: src,
            issue_ts,
            home_state: HomeState::Uncached,
            owner: usize::MAX,
            unloaded_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_identified() {
        assert!(MsgKind::DataS.carries_data());
        assert!(MsgKind::WriteBack.carries_data());
        assert!(!MsgKind::GetS.carries_data());
        assert!(!MsgKind::InvalAck.carries_data());
    }

    #[test]
    fn request_constructor() {
        let m = Msg::request(MsgKind::GetS, 3, 7, BlockAddr(42), 1000);
        assert_eq!(m.requester, 3);
        assert_eq!(m.dst, 7);
        assert_eq!(m.issue_ts, 1000);
    }
}
