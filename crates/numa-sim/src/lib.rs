//! # numa-sim
//!
//! An execution-driven CC-NUMA multiprocessor simulator, the substrate of
//! Section 4 of *Cost-Sensitive Cache Replacement Algorithms* (HPCA 2003):
//!
//! * [`config`] — the Table 4 machine (16 nodes, 4×4 mesh, MESI with
//!   replacement hints, 500 MHz / 1 GHz cores);
//! * [`mesh`] — XY-routed mesh with per-link occupancy;
//! * [`directory`] — MESI directory state with home-side serialization;
//! * [`system`] — CPUs (burst execution with MSHR / outstanding-load
//!   limits), caches, the protocol engine and the event loop;
//! * [`stats`] — per-node counters and the Table 3 latency-correlation
//!   matrix.
//!
//! The L2 replacement policy is pluggable: LRU or any cost-sensitive
//! policy from the `csr` crate, with the miss cost = the last measured
//! miss latency (timestamp-based measurement, Section 4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod directory;
pub mod event;
pub mod mesh;
pub mod msg;
pub mod node;
pub mod stats;
pub mod system;

pub use config::{ns, Clock, CostMode, SystemConfig, Time};
pub use msg::{HomeState, Msg, MsgKind};
pub use node::L2Policy;
pub use stats::{MissClass, NodeStats, ReqType, SimResult, Table3Cell, Table3Matrix};
pub use system::{PolicyFactory, System};
