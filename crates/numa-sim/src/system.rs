//! The whole-machine simulator: CPUs, caches, directories, mesh and the
//! event loop.
//!
//! Each node replays one processor's stream of a [`PhasedTrace`], separated
//! by global barriers. Within a phase the interleaving is determined by the
//! simulated timing: CPUs run in *bursts* until they block on a memory
//! resource (MSHRs exhausted, or the outstanding-load limit modelling the
//! finite active list of an ILP core). L2 misses travel through a MESI
//! directory protocol with replacement hints over the 4×4 mesh.
//!
//! Miss latencies are measured with request timestamps (Section 4.1) and
//! become the miss *cost* stored with the filled block, so cost-sensitive
//! L2 policies replace based on predicted (= last measured) miss latency.

use crate::config::{SystemConfig, Time};
use crate::directory::{DirState, Directory, Pending};
use crate::event::{Event, EventQueue};
use crate::mesh::Mesh;
use crate::msg::{HomeState, Msg, MsgKind};
use crate::node::{CpuState, L2Policy, MshrEntry, Node};
use crate::stats::{MissClass, ReqType, SimResult, Table3Matrix};
use cache_sim::{AccessType, BlockAddr, Cache, Cost, InvalidateKind, Lru};
use mem_trace::{Phase, PhasedTrace, ProcId};
use std::collections::HashMap;

/// Builds an L2 replacement policy for a given geometry (one per node).
pub type PolicyFactory<'a> = dyn Fn(&cache_sim::Geometry) -> L2Policy + 'a;

/// The simulated CC-NUMA machine.
pub struct System {
    cfg: SystemConfig,
    phases: Vec<Phase>,
    nodes: Vec<Node>,
    dirs: Vec<Directory>,
    mesh: Mesh,
    queue: EventQueue,
    homes: HashMap<u64, usize>,
    barrier_arrived: usize,
    barrier_max: Time,
    final_time: Time,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("nodes", &self.nodes.len())
            .field("phases", &self.phases.len())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Assembles a machine for `trace` with one L2 policy instance per node.
    ///
    /// # Panics
    ///
    /// Panics if the trace's processor count differs from the configuration.
    #[must_use]
    pub fn new(cfg: SystemConfig, trace: &PhasedTrace, make_policy: &PolicyFactory<'_>) -> Self {
        assert_eq!(
            trace.num_procs(),
            cfg.num_nodes,
            "trace processor count must match the machine"
        );
        let nodes = (0..cfg.num_nodes)
            .map(|id| {
                let l1 = Cache::new(cfg.l1, Lru::new());
                let l2 = Cache::new(cfg.l2, make_policy(&cfg.l2));
                Node::new(id, l1, l2)
            })
            .collect();
        System {
            nodes,
            dirs: (0..cfg.num_nodes).map(|_| Directory::new()).collect(),
            mesh: Mesh::new(),
            queue: EventQueue::new(),
            homes: HashMap::new(),
            barrier_arrived: 0,
            barrier_max: 0,
            final_time: 0,
            // One up-front copy (~10s of MB at rsim scale) keeps the
            // simulator self-contained; negligible next to a run's time.
            phases: trace.phases().to_vec(),
            cfg,
        }
    }

    /// Runs the machine to completion and returns the results.
    pub fn run(&mut self) -> SimResult {
        for n in 0..self.nodes.len() {
            self.queue.push(0, Event::CpuResume(n));
        }
        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Event::CpuResume(n) => self.cpu_resume(now, n),
                Event::MsgArrive(msg) => self.handle_msg(now, msg),
            }
        }
        if !self.nodes.iter().all(|n| n.state == CpuState::Done) {
            for n in &self.nodes {
                if n.state != CpuState::Done {
                    eprintln!(
                        "node {}: state {:?} phase {} pos {} outstanding {} mshr {:?}",
                        n.id,
                        n.state,
                        n.phase,
                        n.pos,
                        n.outstanding_loads,
                        n.mshr
                            .iter()
                            .map(|(b, m)| (*b, m.is_upgrade))
                            .collect::<Vec<_>>()
                    );
                }
            }
            let stuck_blocks: Vec<u64> = self
                .nodes
                .iter()
                .flat_map(|n| n.mshr.keys().copied())
                .collect();
            for (h, d) in self.dirs.iter().enumerate() {
                for b in &stuck_blocks {
                    if let Some(e) = d.peek(*b) {
                        if e.pending.is_some() || !e.queue.is_empty() {
                            eprintln!(
                                "dir {h} block {b}: state {:?} pending {:?} queued {}",
                                e.state,
                                e.pending.as_ref().map(|p| (
                                    p.msg.kind,
                                    p.msg.requester,
                                    p.acks_outstanding,
                                    p.awaiting_wb
                                )),
                                e.queue.len()
                            );
                        }
                    }
                }
            }
            panic!("simulation drained with unfinished CPUs (deadlock)");
        }
        let mut table3 = Table3Matrix::new();
        for n in &self.nodes {
            table3.merge(&n.table3);
        }
        SimResult {
            exec_time_ps: self.final_time,
            nodes: self.nodes.iter().map(|n| n.stats).collect(),
            table3,
        }
    }

    /// Interconnect statistics (after `run`).
    #[must_use]
    pub fn mesh_stats(&self) -> &crate::mesh::MeshStats {
        self.mesh.stats()
    }

    /// Validates the protocol invariants on a quiesced machine (after
    /// [`run`](Self::run)): directory state matches cache residency, at
    /// most one exclusive holder, L1 contents included in the L2, and no
    /// transaction left dangling.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate_coherence(&mut self) -> Result<(), String> {
        let homes: Vec<(u64, usize)> = self.homes.iter().map(|(b, h)| (*b, *h)).collect();
        for (b, home) in homes {
            let block = BlockAddr(b);
            let holders: Vec<usize> = self
                .nodes
                .iter()
                .filter(|n| n.l2.contains(block))
                .map(|n| n.id)
                .collect();
            let entry = self.dirs[home].entry(b);
            if let Some(p) = &entry.pending {
                return Err(format!(
                    "block {b}: dangling pending at home {home}: kind {:?} req {} remaining {} acks {} awaiting_wb {} state {:?} holders {holders:?}",
                    p.msg.kind, p.msg.requester, p.remaining, p.acks_outstanding, p.awaiting_wb, entry.state
                ));
            }
            if !entry.queue.is_empty() {
                return Err(format!("block {b}: dangling request queue at home {home}"));
            }
            match &entry.state {
                DirState::Uncached => {
                    if !holders.is_empty() {
                        return Err(format!(
                            "block {b}: directory Uncached but cached at {holders:?}"
                        ));
                    }
                }
                DirState::Shared(set) => {
                    let set_v: Vec<usize> = set.iter().copied().collect();
                    // With replacement hints the sharer set tracks holders
                    // exactly; without them, silent clean evictions leave
                    // stale sharers, so the set may only be a superset.
                    let consistent = if self.cfg.replacement_hints {
                        set_v == holders
                    } else {
                        holders.iter().all(|h| set.contains(h))
                    };
                    if !consistent {
                        return Err(format!(
                            "block {b}: sharers {set_v:?} inconsistent with holders {holders:?}"
                        ));
                    }
                    for n in &holders {
                        if self.nodes[*n].owned.contains(&b) {
                            return Err(format!("block {b}: shared but owned at node {n}"));
                        }
                    }
                }
                DirState::Exclusive(o) => {
                    if holders != vec![*o] {
                        return Err(format!(
                            "block {b}: exclusive at {o} but cached at {holders:?}"
                        ));
                    }
                    if !self.nodes[*o].owned.contains(&b) {
                        return Err(format!("block {b}: exclusive at {o} but not marked owned"));
                    }
                }
            }
        }
        for n in &self.nodes {
            if !n.mshr.is_empty() {
                return Err(format!("node {}: dangling MSHR entries", n.id));
            }
            for l1_block in n.l1.resident_blocks() {
                if !n.l2.contains(l1_block) {
                    return Err(format!(
                        "node {}: L1 holds {l1_block} outside the (inclusive) L2",
                        n.id
                    ));
                }
            }
        }
        Ok(())
    }

    fn ctrl_ps(&self) -> Time {
        self.cfg.ctrl_ns * 1000
    }

    fn home_of(&mut self, block: BlockAddr, toucher: usize) -> usize {
        *self.homes.entry(block.0).or_insert(toucher)
    }

    fn send(&mut self, msg: Msg, depart: Time) {
        let flits = if msg.kind.carries_data() {
            self.cfg.data_flits
        } else {
            self.cfg.control_flits
        };
        let arrival = self.mesh.send(&self.cfg, msg.src, msg.dst, flits, depart);
        self.queue.push(arrival, Event::MsgArrive(msg));
    }

    // ------------------------------------------------------------------
    // CPU side
    // ------------------------------------------------------------------

    fn cpu_resume(&mut self, now: Time, n: usize) {
        match self.nodes[n].state {
            CpuState::Done | CpuState::AtBarrier => return,
            // A fill that did not retire a load (store miss, upgrade) also
            // schedules a wakeup; ignore it while the load window is still
            // full, or every spurious wakeup would leak one extra load past
            // the limit.
            CpuState::WaitLoadLimit
                if self.nodes[n].outstanding_loads >= self.cfg.max_load_overlap =>
            {
                return;
            }
            _ => {}
        }
        let node = &mut self.nodes[n];
        if node.is_stalled() {
            node.stats.stall_ps += now.saturating_sub(node.cpu_time);
        }
        node.stalled_since = None;
        node.cpu_time = node.cpu_time.max(now);
        node.state = CpuState::Running;
        self.burst(n);
    }

    /// Records the start of a memory stall (idempotent within one stall).
    fn note_stall(&mut self, n: usize) {
        let node = &mut self.nodes[n];
        if node.stalled_since.is_none() {
            node.stalled_since = Some(node.cpu_time);
        }
    }

    /// Executes references until the CPU blocks, hits a barrier or ends.
    fn burst(&mut self, n: usize) {
        let cycle = self.cfg.cycle_ps();
        let l1_ps = self.cfg.l1_cycles * cycle;
        let l2_ps = self.cfg.l2_cycles * cycle;
        loop {
            let phase_idx = self.nodes[n].phase;
            if phase_idx >= self.phases.len() {
                self.nodes[n].state = CpuState::Done;
                return;
            }
            let pos = self.nodes[n].pos;
            let rec = {
                let stream = self.phases[phase_idx].stream(ProcId(n));
                if pos >= stream.len() {
                    self.barrier_arrive(n);
                    return;
                }
                stream[pos]
            };
            let block = rec.addr.block(self.cfg.l2.block_bytes());
            let is_write = rec.op == AccessType::Write;

            // Issue + L1 probe.
            self.nodes[n].cpu_time += cycle + l1_ps;
            if self.nodes[n].l1.contains(block) {
                if is_write && !self.write_permission_ok(n, block) && !self.start_upgrade(n, block)
                {
                    // MSHRs full; the reference is retried on the next
                    // completion. Refund the probe charge so the retry does
                    // not bill it twice.
                    self.nodes[n].cpu_time -= cycle + l1_ps;
                    self.note_stall(n);
                    return;
                }
                let node = &mut self.nodes[n];
                node.l1.access(block, rec.op, Cost::ZERO);
                node.stats.refs += 1;
                node.stats.l1_hits += 1;
                node.pos += 1;
                continue;
            }

            // L2 probe.
            self.nodes[n].cpu_time += l2_ps;
            if self.nodes[n].l2.contains(block) {
                if is_write && !self.write_permission_ok(n, block) && !self.start_upgrade(n, block)
                {
                    self.nodes[n].cpu_time -= cycle + l1_ps + l2_ps;
                    self.note_stall(n);
                    return;
                }
                {
                    let node = &mut self.nodes[n];
                    node.l2.access(block, rec.op, Cost::ZERO);
                    node.stats.refs += 1;
                    node.stats.l2_hits += 1;
                    node.pos += 1;
                }
                self.fill_l1(n, block, rec.op);
                continue;
            }

            // L2 miss.
            if let Some(m) = self.nodes[n].mshr.get_mut(&block.0) {
                // Merged into the outstanding transaction. A store merging
                // into a read transaction still needs ownership once the
                // shared data arrives (complete_fill issues the upgrade).
                if is_write {
                    m.wants_write = true;
                }
                let node = &mut self.nodes[n];
                node.stats.refs += 1;
                node.pos += 1;
                continue;
            }
            if self.nodes[n].mshr.len() >= self.cfg.mshrs {
                self.nodes[n].cpu_time -= cycle + l1_ps + l2_ps;
                self.nodes[n].state = CpuState::WaitMshr;
                self.note_stall(n);
                return;
            }
            let issue = self.nodes[n].cpu_time;
            let home = self.home_of(block, n);
            let kind = if is_write {
                MsgKind::GetX
            } else {
                MsgKind::GetS
            };
            self.nodes[n].mshr.insert(
                block.0,
                MshrEntry {
                    is_write,
                    is_upgrade: false,
                    issue,
                    wants_write: is_write,
                },
            );
            let depart = issue + self.ctrl_ps();
            self.send(Msg::request(kind, n, home, block, issue), depart);
            {
                let node = &mut self.nodes[n];
                node.stats.refs += 1;
                node.pos += 1;
                if !is_write {
                    node.outstanding_loads += 1;
                    if node.outstanding_loads >= self.cfg.max_load_overlap {
                        node.state = CpuState::WaitLoadLimit;
                        self.note_stall(n);
                        return;
                    }
                }
            }
        }
    }

    /// Whether a store to a resident block can proceed without a
    /// transaction (we own it, or an upgrade is already outstanding).
    fn write_permission_ok(&self, n: usize, block: BlockAddr) -> bool {
        let node = &self.nodes[n];
        node.owned.contains(&block.0) || node.mshr.contains_key(&block.0)
    }

    /// Starts an ownership upgrade; returns `false` when MSHRs are full
    /// (the CPU must stall).
    fn start_upgrade(&mut self, n: usize, block: BlockAddr) -> bool {
        if self.nodes[n].mshr.len() >= self.cfg.mshrs {
            self.nodes[n].state = CpuState::WaitMshr;
            return false;
        }
        let issue = self.nodes[n].cpu_time;
        let home = self.home_of(block, n);
        self.nodes[n].mshr.insert(
            block.0,
            MshrEntry {
                is_write: true,
                is_upgrade: true,
                issue,
                wants_write: true,
            },
        );
        self.nodes[n].stats.upgrades += 1;
        let depart = issue + self.ctrl_ps();
        self.send(
            Msg::request(MsgKind::Upgrade, n, home, block, issue),
            depart,
        );
        true
    }

    /// Fills `block` into the L1, writing back a displaced dirty victim
    /// into the (inclusive) L2.
    fn fill_l1(&mut self, n: usize, block: BlockAddr, op: AccessType) {
        let node = &mut self.nodes[n];
        let out = node.l1.access(block, op, Cost::ZERO);
        if let Some(ev) = out.evicted {
            if ev.dirty {
                node.l2.writeback(ev.block);
            }
        }
    }

    /// Barrier semantics: a CPU arrives when it has *issued* its whole
    /// phase stream; outstanding fills may still drain during the next
    /// phase (release consistency at barriers rather than the paper's
    /// sequential consistency — a documented simplification that slightly
    /// favours every policy equally).
    fn barrier_arrive(&mut self, n: usize) {
        let t = self.nodes[n].cpu_time;
        self.nodes[n].state = CpuState::AtBarrier;
        self.barrier_arrived += 1;
        self.barrier_max = self.barrier_max.max(t);
        if self.barrier_arrived < self.nodes.len() {
            return;
        }
        // Release.
        let release = self.barrier_max + self.cfg.barrier_ns * 1000;
        self.barrier_arrived = 0;
        self.barrier_max = 0;
        let next_phase = self.nodes[0].phase + 1;
        let done = next_phase >= self.phases.len();
        for node in &mut self.nodes {
            node.phase = next_phase;
            node.pos = 0;
            node.cpu_time = release;
            node.state = if done {
                CpuState::Done
            } else {
                CpuState::Running
            };
        }
        if done {
            self.final_time = release;
        } else {
            for i in 0..self.nodes.len() {
                self.queue.push(release, Event::CpuResume(i));
            }
        }
    }

    // ------------------------------------------------------------------
    // Message dispatch
    // ------------------------------------------------------------------

    fn handle_msg(&mut self, now: Time, msg: Msg) {
        match msg.kind {
            MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade => self.home_request(now, msg),
            MsgKind::ReplHint => self.home_repl_hint(&msg),
            MsgKind::WriteBack => self.home_writeback(now, msg),
            MsgKind::InvalAck => self.home_inval_ack(now, msg),
            MsgKind::DownAck => self.home_down_ack(now, msg),
            MsgKind::OwnerAck => self.home_owner_ack(now, msg),
            MsgKind::FetchNack => self.home_fetch_nack(now, msg),
            MsgKind::GrantAck => self.home_grant_ack(now, msg),
            MsgKind::FetchS | MsgKind::FetchInval => self.cache_fetch(now, msg),
            MsgKind::InvalReq => self.cache_inval(now, msg),
            MsgKind::DataS
            | MsgKind::DataE
            | MsgKind::UpgAck
            | MsgKind::OwnerDataS
            | MsgKind::OwnerDataE => self.complete_fill(now, msg),
        }
    }

    // ------------------------------------------------------------------
    // Home (directory) side
    // ------------------------------------------------------------------

    fn home_request(&mut self, now: Time, msg: Msg) {
        let entry = self.dirs[msg.dst].entry(msg.block.0);
        if entry.pending.is_some() {
            entry.queue.push_back(msg);
            return;
        }
        self.dir_start(now, msg);
    }

    /// Unloaded latency of an invalidation round trip to the farthest
    /// target, ns.
    fn inval_round_trip_ns(&self, home: usize, targets: &[usize]) -> u64 {
        targets
            .iter()
            .map(|&t| {
                self.cfg.unloaded_msg_ns(home, t, self.cfg.control_flits)
                    + self.cfg.ctrl_ns
                    + self.cfg.unloaded_msg_ns(t, home, self.cfg.control_flits)
            })
            .max()
            .unwrap_or(0)
    }

    fn dir_start(&mut self, now: Time, msg: Msg) {
        let home = msg.dst;
        let req = msg.requester;
        let ctrl = self.ctrl_ps();
        let mem = self.cfg.mem_ns * 1000;
        // The clone is cheap in practice (sharer sets are tiny); owning the
        // state keeps the match arms free to mutate the entry.
        let state = self.dirs[home].entry(msg.block.0).state.clone();
        let state_seen = state.classify();

        match (msg.kind, state) {
            // MESI grants Exclusive to the sole requester of an uncached
            // block, so GetS and GetX behave identically here.
            (MsgKind::GetS | MsgKind::GetX, DirState::Uncached) => {
                self.dirs[home].entry(msg.block.0).state = DirState::Exclusive(req);
                self.hold_for_grant(home, msg, state_seen);
                let mut reply = msg;
                reply.kind = MsgKind::DataE;
                reply.src = home;
                reply.dst = req;
                reply.home_state = HomeState::Uncached;
                reply.unloaded_ns = self.cfg.unloaded_clean_ns(req, home);
                self.send(reply, now + ctrl + mem);
            }
            (MsgKind::GetS, DirState::Shared(mut set)) => {
                set.insert(req);
                self.dirs[home].entry(msg.block.0).state = DirState::Shared(set);
                self.hold_for_grant(home, msg, state_seen);
                let mut reply = msg;
                reply.kind = MsgKind::DataS;
                reply.src = home;
                reply.dst = req;
                reply.home_state = HomeState::Shared;
                reply.unloaded_ns = self.cfg.unloaded_clean_ns(req, home);
                self.send(reply, now + ctrl + mem);
            }
            (MsgKind::GetS, DirState::Exclusive(owner)) if owner == req => {
                // Our own writeback is still in flight; wait for it.
                self.dirs[home].entry(msg.block.0).pending = Some(Pending {
                    msg,
                    acks_outstanding: 0,
                    mem_ready: 0,
                    awaiting_wb: true,
                    state_seen,
                    prev_owner: owner,
                    remaining: 0,
                });
            }
            (MsgKind::GetS, DirState::Exclusive(owner)) => {
                self.dirs[home].entry(msg.block.0).pending = Some(Pending {
                    msg,
                    acks_outstanding: 0,
                    mem_ready: 0,
                    awaiting_wb: false,
                    state_seen,
                    prev_owner: owner,
                    remaining: 2,
                });
                let mut fwd = msg;
                fwd.kind = MsgKind::FetchS;
                fwd.src = home;
                fwd.dst = owner;
                fwd.owner = owner;
                fwd.home_state = HomeState::Exclusive;
                fwd.unloaded_ns = self.cfg.unloaded_dirty_ns(req, home, owner);
                self.send(fwd, now + ctrl);
            }
            (MsgKind::GetX, DirState::Shared(set)) => {
                let targets: Vec<usize> = set.iter().copied().filter(|&t| t != req).collect();
                if targets.is_empty() {
                    self.dirs[home].entry(msg.block.0).state = DirState::Exclusive(req);
                    self.hold_for_grant(home, msg, state_seen);
                    let mut reply = msg;
                    reply.kind = MsgKind::DataE;
                    reply.src = home;
                    reply.dst = req;
                    reply.home_state = HomeState::Shared;
                    reply.unloaded_ns = self.cfg.unloaded_clean_ns(req, home);
                    self.send(reply, now + ctrl + mem);
                    return;
                }
                let unloaded = self.cfg.unloaded_clean_ns(req, home)
                    + self.inval_round_trip_ns(home, &targets);
                let mut pending_msg = msg;
                pending_msg.unloaded_ns = unloaded;
                pending_msg.home_state = HomeState::Shared;
                self.dirs[home].entry(msg.block.0).pending = Some(Pending {
                    msg: pending_msg,
                    acks_outstanding: targets.len(),
                    mem_ready: now + ctrl + mem,
                    awaiting_wb: false,
                    state_seen,
                    prev_owner: usize::MAX,
                    remaining: 1,
                });
                for t in targets {
                    let mut inval = msg;
                    inval.kind = MsgKind::InvalReq;
                    inval.src = home;
                    inval.dst = t;
                    self.send(inval, now + ctrl);
                }
            }
            (MsgKind::GetX, DirState::Exclusive(owner)) => {
                self.dirs[home].entry(msg.block.0).pending = Some(Pending {
                    msg,
                    acks_outstanding: 0,
                    mem_ready: 0,
                    awaiting_wb: owner == req,
                    state_seen,
                    prev_owner: owner,
                    remaining: if owner == req { 0 } else { 2 },
                });
                if owner != req {
                    let mut fwd = msg;
                    fwd.kind = MsgKind::FetchInval;
                    fwd.src = home;
                    fwd.dst = owner;
                    fwd.owner = owner;
                    fwd.home_state = HomeState::Exclusive;
                    fwd.unloaded_ns = self.cfg.unloaded_dirty_ns(req, home, owner);
                    self.send(fwd, now + ctrl);
                }
            }
            (MsgKind::Upgrade, DirState::Shared(set)) if set.contains(&req) => {
                let targets: Vec<usize> = set.iter().copied().filter(|&t| t != req).collect();
                if targets.is_empty() {
                    self.dirs[home].entry(msg.block.0).state = DirState::Exclusive(req);
                    self.hold_for_grant(home, msg, state_seen);
                    let mut reply = msg;
                    reply.kind = MsgKind::UpgAck;
                    reply.src = home;
                    reply.dst = req;
                    reply.home_state = HomeState::Shared;
                    reply.unloaded_ns = self.unloaded_upgrade_ns(req, home);
                    self.send(reply, now + ctrl);
                    return;
                }
                let unloaded =
                    self.unloaded_upgrade_ns(req, home) + self.inval_round_trip_ns(home, &targets);
                let mut pending_msg = msg;
                pending_msg.unloaded_ns = unloaded;
                pending_msg.home_state = HomeState::Shared;
                self.dirs[home].entry(msg.block.0).pending = Some(Pending {
                    msg: pending_msg,
                    acks_outstanding: targets.len(),
                    mem_ready: 0,
                    awaiting_wb: false,
                    state_seen,
                    prev_owner: usize::MAX,
                    remaining: 1,
                });
                for t in targets {
                    let mut inval = msg;
                    inval.kind = MsgKind::InvalReq;
                    inval.src = home;
                    inval.dst = t;
                    self.send(inval, now + ctrl);
                }
            }
            (MsgKind::Upgrade, _) => {
                // The requester lost its copy before the upgrade was served
                // (or the state is otherwise stale): serve as a plain GetX.
                let mut as_getx = msg;
                as_getx.kind = MsgKind::GetX;
                self.dir_start(now, as_getx);
            }
            (k, s) => unreachable!("home received {k:?} in state {s:?}"),
        }
    }

    /// Marks the entry busy until the requester's [`MsgKind::GrantAck`]
    /// arrives (no other completion is outstanding; memory-served grants
    /// have no previous owner).
    fn hold_for_grant(&mut self, home: usize, msg: Msg, state_seen: HomeState) {
        self.dirs[home].entry(msg.block.0).pending = Some(Pending {
            msg,
            acks_outstanding: 0,
            mem_ready: 0,
            awaiting_wb: false,
            state_seen,
            prev_owner: usize::MAX,
            remaining: 1,
        });
    }

    /// Unloaded latency of an upgrade transaction without third-party
    /// sharers, ns.
    fn unloaded_upgrade_ns(&self, req: usize, home: usize) -> u64 {
        self.cfg.probe_ns()
            + self.cfg.ctrl_ns
            + self.cfg.unloaded_msg_ns(req, home, self.cfg.control_flits)
            + self.cfg.ctrl_ns
            + self.cfg.unloaded_msg_ns(home, req, self.cfg.control_flits)
            + self.cfg.ctrl_ns
    }

    /// Replacement hints mutate the sharer set immediately, even while a
    /// transaction is pending. This is safe because pending transactions
    /// snapshot everything they need at start (invalidation targets,
    /// unloaded latency) and write their final state wholesale on
    /// completion; the hint only ever *removes* a sharer, and a removed
    /// sharer still acks the invalidation it may already have been sent.
    fn home_repl_hint(&mut self, msg: &Msg) {
        let entry = self.dirs[msg.dst].entry(msg.block.0);
        match &mut entry.state {
            DirState::Shared(set) => {
                set.remove(&msg.src);
                if set.is_empty() {
                    entry.state = DirState::Uncached;
                }
            }
            DirState::Exclusive(o) if *o == msg.src => {
                entry.state = DirState::Uncached;
            }
            _ => {}
        }
    }

    fn home_writeback(&mut self, now: Time, msg: Msg) {
        let entry = self.dirs[msg.dst].entry(msg.block.0);
        let from_owner = matches!(entry.state, DirState::Exclusive(o) if o == msg.src);
        let awaiting_wb = entry.pending.as_ref().is_some_and(|p| p.awaiting_wb);
        if entry.pending.is_some() {
            if awaiting_wb && from_owner {
                entry.state = DirState::Uncached;
                self.serve_from_memory(now, msg.dst, msg.block);
                return;
            }
            // Bank the writeback for the FetchNack that will follow.
            if from_owner {
                entry.state = DirState::Uncached;
            }
            entry.wb_banked = true;
            return;
        }
        if from_owner {
            entry.state = DirState::Uncached;
        }
    }

    /// Completes the pending request from memory after the owner's
    /// writeback arrived; the transaction stays busy until the grant ack.
    fn serve_from_memory(&mut self, now: Time, home: usize, block: BlockAddr) {
        let ctrl = self.ctrl_ps();
        let mem = self.cfg.mem_ns * 1000;
        let entry = self.dirs[home].entry(block.0);
        let p = entry
            .pending
            .as_mut()
            .expect("serve_from_memory without pending");
        p.awaiting_wb = false;
        p.remaining = 1; // only the grant ack remains
        let (req, state_seen, prev_owner, pmsg) =
            (p.msg.requester, p.state_seen, p.prev_owner, p.msg);
        entry.state = DirState::Exclusive(req);
        let mut reply = pmsg;
        reply.kind = MsgKind::DataE;
        reply.src = home;
        reply.dst = req;
        reply.home_state = state_seen;
        reply.owner = prev_owner;
        // Served from memory after a writeback: clean 2-hop timing.
        reply.unloaded_ns = self.cfg.unloaded_clean_ns(req, home);
        self.send(reply, now + ctrl + mem);
    }

    fn home_inval_ack(&mut self, now: Time, msg: Msg) {
        let ctrl = self.ctrl_ps();
        let entry = self.dirs[msg.dst].entry(msg.block.0);
        let p = entry
            .pending
            .as_mut()
            .expect("InvalAck without pending transaction");
        p.acks_outstanding -= 1;
        if p.acks_outstanding > 0 {
            return;
        }
        let (req, kind, mem_ready, pmsg) = (p.msg.requester, p.msg.kind, p.mem_ready, p.msg);
        entry.state = DirState::Exclusive(req);
        let mut reply = pmsg;
        reply.src = msg.dst;
        reply.dst = req;
        match kind {
            MsgKind::GetX => {
                reply.kind = MsgKind::DataE;
                self.send(reply, (now + ctrl).max(mem_ready));
            }
            MsgKind::Upgrade => {
                reply.kind = MsgKind::UpgAck;
                self.send(reply, now + ctrl);
            }
            other => unreachable!("acks collected for {other:?}"),
        }
        // The entry stays busy until the requester's grant ack.
    }

    /// Applies one completion acknowledgement of the pending transaction:
    /// optionally installs the final directory state, then decrements the
    /// outstanding-ack count and finishes the transaction at zero.
    fn dir_ack_progress(&mut self, now: Time, msg: &Msg, final_state: Option<DirState>) {
        let entry = self.dirs[msg.dst].entry(msg.block.0);
        let p = entry
            .pending
            .as_mut()
            .unwrap_or_else(|| panic!("{:?} without pending transaction", msg.kind));
        p.remaining -= 1;
        let done = p.remaining == 0;
        if let Some(state) = final_state {
            entry.state = state;
        }
        if done {
            self.dir_complete(now, msg.dst, msg.block);
        }
    }

    fn home_down_ack(&mut self, now: Time, msg: Msg) {
        let p = self.dirs[msg.dst]
            .entry(msg.block.0)
            .pending
            .as_ref()
            .expect("DownAck without pending transaction");
        let mut set = std::collections::BTreeSet::new();
        set.insert(p.prev_owner);
        set.insert(p.msg.requester);
        self.dir_ack_progress(now, &msg, Some(DirState::Shared(set)));
    }

    fn home_owner_ack(&mut self, now: Time, msg: Msg) {
        let req = self.dirs[msg.dst]
            .entry(msg.block.0)
            .pending
            .as_ref()
            .expect("OwnerAck without pending transaction")
            .msg
            .requester;
        self.dir_ack_progress(now, &msg, Some(DirState::Exclusive(req)));
    }

    fn home_grant_ack(&mut self, now: Time, msg: Msg) {
        self.dir_ack_progress(now, &msg, None);
    }

    fn home_fetch_nack(&mut self, now: Time, msg: Msg) {
        let entry = self.dirs[msg.dst].entry(msg.block.0);
        if entry.wb_banked {
            entry.wb_banked = false;
            self.serve_from_memory(now, msg.dst, msg.block);
        } else {
            let p = entry
                .pending
                .as_mut()
                .expect("FetchNack without pending transaction");
            p.awaiting_wb = true;
        }
    }

    /// Finishes the active transaction and lets one queued request proceed.
    fn dir_complete(&mut self, now: Time, home: usize, block: BlockAddr) {
        let entry = self.dirs[home].entry(block.0);
        entry.pending = None;
        entry.wb_banked = false;
        if let Some(next) = entry.queue.pop_front() {
            // Re-inject; the request pays another controller traversal.
            self.queue
                .push(now + self.ctrl_ps(), Event::MsgArrive(next));
        }
    }

    // ------------------------------------------------------------------
    // Remote cache side
    // ------------------------------------------------------------------

    fn cache_fetch(&mut self, now: Time, msg: Msg) {
        let n = msg.dst;
        let ctrl = self.ctrl_ps();
        let home = msg.src;
        if !self.nodes[n].l2.contains(msg.block) {
            // The grant-ack serialization guarantees our own fills are
            // complete before an intervention can arrive, so an absent
            // block means our writeback is in flight to the home.
            let mut nack = msg;
            nack.kind = MsgKind::FetchNack;
            nack.src = n;
            nack.dst = home;
            self.send(nack, now + ctrl);
            return;
        }
        match msg.kind {
            MsgKind::FetchS => {
                // Downgrade: keep a shared copy, forward data.
                self.nodes[n].owned.remove(&msg.block.0);
            }
            MsgKind::FetchInval => {
                let node = &mut self.nodes[n];
                node.l1.invalidate(msg.block, InvalidateKind::Coherence);
                node.l2.invalidate(msg.block, InvalidateKind::Coherence);
                node.owned.remove(&msg.block.0);
                node.stats.invals_received += 1;
            }
            _ => unreachable!("cache_fetch on {:?}", msg.kind),
        }
        let mut data = msg;
        data.kind = if msg.kind == MsgKind::FetchS {
            MsgKind::OwnerDataS
        } else {
            MsgKind::OwnerDataE
        };
        data.src = n;
        data.dst = msg.requester;
        self.send(data, now + ctrl);
        let mut ack = msg;
        ack.kind = if msg.kind == MsgKind::FetchS {
            MsgKind::DownAck
        } else {
            MsgKind::OwnerAck
        };
        ack.src = n;
        ack.dst = home;
        self.send(ack, now + ctrl);
    }

    fn cache_inval(&mut self, now: Time, msg: Msg) {
        let n = msg.dst;
        let ctrl = self.ctrl_ps();
        let home = msg.src;
        self.nodes[n].stats.invals_received += 1;
        // Grant-ack serialization guarantees no data fill for this block is
        // in flight toward us: either we hold the block (invalidate it), or
        // our own request is still queued at the home (nothing to do
        // locally — the later fill will carry fresh data). Either way the
        // home gets its ack immediately. An upgrade that lost the race is
        // also handled here: the home will serve our queued upgrade as a
        // full GetX.
        let node = &mut self.nodes[n];
        node.l1.invalidate(msg.block, InvalidateKind::Coherence);
        node.l2.invalidate(msg.block, InvalidateKind::Coherence);
        node.owned.remove(&msg.block.0);
        let mut ack = msg;
        ack.kind = MsgKind::InvalAck;
        ack.src = n;
        ack.dst = home;
        self.send(ack, now + ctrl);
    }

    // ------------------------------------------------------------------
    // Fill completion at the requester
    // ------------------------------------------------------------------

    fn complete_fill(&mut self, now: Time, msg: Msg) {
        let n = msg.dst;
        let ctrl = self.ctrl_ps();
        let done_at = now + ctrl;
        let entry = self.nodes[n]
            .mshr
            .remove(&msg.block.0)
            .expect("fill without an MSHR entry");
        let measured_ps = done_at.saturating_sub(entry.issue);
        // Penalty attribution: the stall window this fill terminates. Fills
        // arriving while the CPU is running were fully overlapped, and only
        // a fill that actually relieves the stall is charged — any fill
        // frees an MSHR, but a load-limit stall ends only with a load.
        let relieves = match self.nodes[n].state {
            CpuState::WaitMshr => true,
            CpuState::WaitLoadLimit => !entry.is_write && !entry.is_upgrade,
            _ => false,
        };
        let penalty_ps = if relieves {
            let p = self.nodes[n]
                .stalled_since
                .map_or(0, |since| done_at.saturating_sub(since));
            // Each stall window is billed once (to its first reliever).
            self.nodes[n].stalled_since = None;
            p
        } else {
            0
        };
        let cost = Cost(self.cfg.cost_mode.cost_of(
            measured_ps / 1000,
            msg.unloaded_ns,
            penalty_ps / 1000,
        ));

        // Table 3: consecutive-miss classification per (node, block).
        let class = MissClass {
            req: if entry.is_write {
                ReqType::RdExcl
            } else {
                ReqType::Read
            },
            home_state: msg.home_state,
            unloaded_ns: msg.unloaded_ns,
        };
        if let Some(last) = self.nodes[n].last_miss.insert(msg.block.0, class) {
            self.nodes[n].table3.record(last, class);
        }

        match msg.kind {
            MsgKind::UpgAck => {
                if self.nodes[n].l2.contains(msg.block) {
                    // The block was already accessed (and promoted) when the
                    // store issued; only refresh the cost prediction and the
                    // dirtiness — a second l2.access would double-promote
                    // and double-count the reference.
                    let node = &mut self.nodes[n];
                    node.owned.insert(msg.block.0);
                    node.l2.update_cost(msg.block, cost);
                    node.l2.writeback(msg.block);
                } else {
                    // Evicted while the upgrade was in flight: hand the
                    // (conceptually dirty) line straight back.
                    let home = self.home_of(msg.block, n);
                    self.nodes[n].stats.writebacks += 1;
                    self.send(
                        Msg::request(MsgKind::WriteBack, n, home, msg.block, done_at),
                        done_at,
                    );
                }
            }
            MsgKind::DataS | MsgKind::DataE | MsgKind::OwnerDataS | MsgKind::OwnerDataE => {
                let op = if entry.is_write || entry.wants_write {
                    AccessType::Write
                } else {
                    AccessType::Read
                };
                if !entry.is_upgrade {
                    // An upgrade that lost its race and was re-served as a
                    // GetX was already counted as an L2 hit at issue time;
                    // counting the data fill again would double-count it.
                    let node = &mut self.nodes[n];
                    node.stats.l2_misses += 1;
                    node.stats.miss_latency_ps += measured_ps;
                }
                let out = self.nodes[n].l2.access(msg.block, op, cost);
                if let Some(ev) = out.evicted {
                    self.handle_l2_eviction(now, n, ev);
                }
                self.fill_l1(n, msg.block, op);
                if matches!(msg.kind, MsgKind::DataE | MsgKind::OwnerDataE) {
                    self.nodes[n].owned.insert(msg.block.0);
                } else if entry.wants_write {
                    // A store merged into this read transaction while it was
                    // in flight; the shared grant does not confer ownership,
                    // so acquire it now with an upgrade.
                    self.nodes[n].mshr.insert(
                        msg.block.0,
                        MshrEntry {
                            is_write: true,
                            is_upgrade: true,
                            issue: done_at,
                            wants_write: true,
                        },
                    );
                    self.nodes[n].stats.upgrades += 1;
                    let home = self.home_of(msg.block, n);
                    self.send(
                        Msg::request(MsgKind::Upgrade, n, home, msg.block, done_at),
                        done_at + ctrl,
                    );
                }
            }
            other => unreachable!("complete_fill on {other:?}"),
        }

        // Release the home's transaction serialization.
        let home = self.home_of(msg.block, n);
        let mut grant = msg;
        grant.kind = MsgKind::GrantAck;
        grant.src = n;
        grant.dst = home;
        self.send(grant, done_at);

        // Loads allocate their entries with is_write == false; upgrades and
        // store misses never count against the load-overlap window.
        if !entry.is_write && !entry.is_upgrade {
            self.nodes[n].outstanding_loads -= 1;
        }
        if self.nodes[n].is_stalled() {
            self.queue.push(done_at, Event::CpuResume(n));
        }
    }

    fn handle_l2_eviction(&mut self, now: Time, n: usize, ev: cache_sim::Evicted) {
        let ctrl = self.ctrl_ps();
        self.nodes[n]
            .l1
            .invalidate(ev.block, InvalidateKind::Inclusion);
        // A block with an in-flight upgrade is left to the UpgAck handler,
        // which returns the granted ownership with a WriteBack; sending a
        // ReplHint here as well would tell the home about the departure
        // twice.
        if self.nodes[n]
            .mshr
            .get(&ev.block.0)
            .is_some_and(|m| m.is_upgrade)
        {
            return;
        }
        let home = self.home_of(ev.block, n);
        if self.nodes[n].owned.remove(&ev.block.0) {
            self.nodes[n].stats.writebacks += 1;
            self.send(
                Msg::request(MsgKind::WriteBack, n, home, ev.block, now),
                now + ctrl,
            );
        } else if self.cfg.replacement_hints {
            self.nodes[n].stats.repl_hints += 1;
            self.send(
                Msg::request(MsgKind::ReplHint, n, home, ev.block, now),
                now + ctrl,
            );
        }
        // Without hints, clean shared evictions are silent: the home's
        // sharer set goes stale and later invalidations may target nodes
        // that no longer hold the block (they ack without a copy).
    }
}
