//! Simulation statistics, including the Table 3 latency-correlation matrix.

use crate::config::Time;
use crate::msg::HomeState;

/// Request type of a miss, for the Table 3 classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqType {
    /// A read (GetS).
    Read,
    /// A read-exclusive (GetX or upgrade).
    RdExcl,
}

/// The Table 3 attributes of one miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissClass {
    /// Read or read-exclusive.
    pub req: ReqType,
    /// Directory state at the home when served.
    pub home_state: HomeState,
    /// Analytic unloaded latency of the transaction, ns.
    pub unloaded_ns: u64,
}

impl MissClass {
    /// Row/column index in the 6×6 matrix (read × U/S/E, rd-excl × U/S/E).
    #[must_use]
    pub fn index(&self) -> usize {
        let r = match self.req {
            ReqType::Read => 0,
            ReqType::RdExcl => 3,
        };
        let s = match self.home_state {
            HomeState::Uncached => 0,
            HomeState::Shared => 1,
            HomeState::Exclusive => 2,
        };
        r + s
    }

    /// Human-readable label for matrix axis `i` (0..6).
    #[must_use]
    pub fn label(i: usize) -> &'static str {
        ["rd/U", "rd/S", "rd/E", "rx/U", "rx/S", "rx/E"][i]
    }
}

/// One cell of the Table 3 matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Table3Cell {
    /// Consecutive-miss pairs falling in this cell.
    pub count: u64,
    /// Pairs whose unloaded latencies differ.
    pub mismatches: u64,
    /// Sum of |Δ unloaded latency| over mismatching pairs, ns.
    pub err_sum_ns: u64,
}

impl Table3Cell {
    /// Mismatch fraction within the cell.
    #[must_use]
    pub fn mismatch_pct(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            100.0 * self.mismatches as f64 / self.count as f64
        }
    }

    /// Mean |Δ latency| over mismatching pairs, ns.
    #[must_use]
    pub fn avg_err_ns(&self) -> f64 {
        if self.mismatches == 0 {
            0.0
        } else {
            self.err_sum_ns as f64 / self.mismatches as f64
        }
    }
}

/// The full consecutive-miss correlation matrix (Table 3).
#[derive(Debug, Clone, Default)]
pub struct Table3Matrix {
    cells: [[Table3Cell; 6]; 6],
    total_pairs: u64,
}

impl Table3Matrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Table3Matrix::default()
    }

    /// Records a consecutive miss pair (`last`, `current`) to the same
    /// block by the same processor.
    pub fn record(&mut self, last: MissClass, current: MissClass) {
        let cell = &mut self.cells[last.index()][current.index()];
        cell.count += 1;
        if last.unloaded_ns != current.unloaded_ns {
            cell.mismatches += 1;
            cell.err_sum_ns += last.unloaded_ns.abs_diff(current.unloaded_ns);
        }
        self.total_pairs += 1;
    }

    /// The cell for (`last_idx`, `cur_idx`).
    #[must_use]
    pub fn cell(&self, last_idx: usize, cur_idx: usize) -> &Table3Cell {
        &self.cells[last_idx][cur_idx]
    }

    /// Total recorded pairs.
    #[must_use]
    pub fn total_pairs(&self) -> u64 {
        self.total_pairs
    }

    /// Occurrence percentage of a cell.
    #[must_use]
    pub fn occurrence_pct(&self, last_idx: usize, cur_idx: usize) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            100.0 * self.cells[last_idx][cur_idx].count as f64 / self.total_pairs as f64
        }
    }

    /// Percentage of all pairs whose unloaded latency repeats (the paper's
    /// headline "93 % of misses" figure).
    #[must_use]
    pub fn same_latency_pct(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        let mismatches: u64 = self.cells.iter().flatten().map(|c| c.mismatches).sum();
        100.0 * (self.total_pairs - mismatches) as f64 / self.total_pairs as f64
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &Table3Matrix) {
        for i in 0..6 {
            for j in 0..6 {
                let a = &mut self.cells[i][j];
                let b = &other.cells[i][j];
                a.count += b.count;
                a.mismatches += b.mismatches;
                a.err_sum_ns += b.err_sum_ns;
            }
        }
        self.total_pairs += other.total_pairs;
    }
}

/// Per-node execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// References executed.
    pub refs: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (coherence transactions, excluding upgrades).
    pub l2_misses: u64,
    /// Ownership upgrades issued.
    pub upgrades: u64,
    /// Sum of measured miss latencies, ps.
    pub miss_latency_ps: u64,
    /// Invalidations received.
    pub invals_received: u64,
    /// Writebacks sent.
    pub writebacks: u64,
    /// Replacement hints sent.
    pub repl_hints: u64,
    /// Cycles (ps) this CPU spent stalled waiting for memory.
    pub stall_ps: u64,
}

impl NodeStats {
    /// Average measured miss latency in ns.
    #[must_use]
    pub fn avg_miss_latency_ns(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            self.miss_latency_ps as f64 / self.l2_misses as f64 / 1000.0
        }
    }
}

/// The result of one whole-machine simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// End-to-end execution time, ps.
    pub exec_time_ps: Time,
    /// Per-node statistics.
    pub nodes: Vec<NodeStats>,
    /// The Table 3 correlation matrix (aggregated over all nodes).
    pub table3: Table3Matrix,
}

impl SimResult {
    /// Execution time in microseconds.
    #[must_use]
    pub fn exec_time_us(&self) -> f64 {
        self.exec_time_ps as f64 / 1e6
    }

    /// Aggregate L2 miss count.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.nodes.iter().map(|n| n.l2_misses).sum()
    }

    /// Machine-wide average miss latency, ns.
    #[must_use]
    pub fn avg_miss_latency_ns(&self) -> f64 {
        let misses = self.total_misses();
        if misses == 0 {
            return 0.0;
        }
        let sum: u64 = self.nodes.iter().map(|n| n.miss_latency_ps).sum();
        sum as f64 / misses as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(req: ReqType, hs: HomeState, lat: u64) -> MissClass {
        MissClass {
            req,
            home_state: hs,
            unloaded_ns: lat,
        }
    }

    #[test]
    fn matrix_indexing() {
        assert_eq!(class(ReqType::Read, HomeState::Uncached, 0).index(), 0);
        assert_eq!(class(ReqType::Read, HomeState::Exclusive, 0).index(), 2);
        assert_eq!(class(ReqType::RdExcl, HomeState::Uncached, 0).index(), 3);
        assert_eq!(class(ReqType::RdExcl, HomeState::Exclusive, 0).index(), 5);
    }

    #[test]
    fn record_and_percentages() {
        let mut m = Table3Matrix::new();
        let a = class(ReqType::Read, HomeState::Shared, 380);
        let b = class(ReqType::Read, HomeState::Shared, 380);
        let c = class(ReqType::Read, HomeState::Exclusive, 480);
        m.record(a, b); // same latency
        m.record(b, c); // mismatch, |480-380| = 100
        assert_eq!(m.total_pairs(), 2);
        assert!((m.same_latency_pct() - 50.0).abs() < 1e-9);
        assert!((m.occurrence_pct(1, 1) - 50.0).abs() < 1e-9);
        let cell = m.cell(1, 2);
        assert_eq!(cell.mismatches, 1);
        assert!((cell.avg_err_ns() - 100.0).abs() < 1e-9);
        assert!((cell.mismatch_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut m1 = Table3Matrix::new();
        let mut m2 = Table3Matrix::new();
        let a = class(ReqType::Read, HomeState::Uncached, 120);
        m1.record(a, a);
        m2.record(a, a);
        m1.merge(&m2);
        assert_eq!(m1.total_pairs(), 2);
        assert_eq!(m1.cell(0, 0).count, 2);
    }
}
