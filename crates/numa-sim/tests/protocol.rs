//! End-to-end protocol and timing tests for the CC-NUMA simulator.

use mem_trace::Workload;
use numa_sim::{Clock, System, SystemConfig};

mod util;
use util::{cfg4 as four_node_cfg, lru_factory, trace_of};

#[test]
fn local_read_miss_latency_matches_model() {
    let cfg = four_node_cfg();
    // Node 0 reads one block in two barrier-separated phases: one cold
    // local miss, then an L1 hit (a same-phase re-read would simply merge
    // into the outstanding MSHR, since the CPU runs ahead of the fill).
    let pt = trace_of(
        4,
        &[
            vec![(0, vec![(0x1000, false)])],
            vec![(0, vec![(0x1000, false)])],
        ],
    );
    let mut sys = System::new(cfg, &pt, &*lru_factory());
    let res = sys.run();
    assert_eq!(res.nodes[0].l2_misses, 1);
    assert_eq!(res.nodes[0].l1_hits, 1);
    // Measured latency: ctrl + (ctrl + mem) + ctrl = 108 ns for a local
    // clean miss (the request never crosses the mesh).
    let lat = res.nodes[0].avg_miss_latency_ns();
    assert!((lat - 108.0).abs() < 2.0, "local latency {lat}");
}

#[test]
fn remote_read_miss_latency_matches_model() {
    let cfg = four_node_cfg();
    // Node 1 touches the block first (homes it), then node 0 reads it in a
    // later phase after node 1 evicted nothing — state Exclusive at node 1,
    // so this is a 3-hop (owner-served) transaction with home == owner.
    let pt = trace_of(
        4,
        &[
            vec![(1, vec![(0x2000, false)])],
            vec![(0, vec![(0x2000, false)])],
        ],
    );
    let mut sys = System::new(cfg, &pt, &*lru_factory());
    let res = sys.run();
    assert_eq!(res.nodes[0].l2_misses, 1);
    let lat = res.nodes[0].avg_miss_latency_ns();
    // Fetch path with home == owner (adjacent node): roughly
    // ctrl + hop(ctrl) + ctrl + local fetch + ctrl + hop(data) + ctrl.
    assert!(lat > 250.0 && lat < 450.0, "remote latency {lat}");
}

#[test]
fn write_invalidates_remote_sharer() {
    let cfg = four_node_cfg();
    let pt = trace_of(
        4,
        &[
            // Phase 1: node 0 homes and reads the block.
            vec![(0, vec![(0x3000, false)])],
            // Phase 2: node 1 reads it (now shared by 0 and 1).
            vec![(1, vec![(0x3000, false)])],
            // Phase 3: node 1 writes it (upgrade; invalidates node 0).
            vec![(1, vec![(0x3000, true)])],
            // Phase 4: node 0 reads again — must re-miss.
            vec![(0, vec![(0x3000, false)])],
        ],
    );
    let mut sys = System::new(cfg, &pt, &*lru_factory());
    let res = sys.run();
    assert_eq!(
        res.nodes[0].l2_misses, 2,
        "node 0 must re-miss after the invalidation"
    );
    assert_eq!(
        res.nodes[1].upgrades, 1,
        "node 1's store should be an upgrade"
    );
    assert_eq!(res.nodes[0].invals_received, 1);
}

#[test]
fn dirty_remote_read_is_three_hop() {
    let cfg = four_node_cfg();
    let pt = trace_of(
        4,
        &[
            // Node 2 homes the block and dirties it.
            vec![(2, vec![(0x4000, true)])],
            // Node 3 reads it: home = owner = 2, 3-hop forwarding.
            vec![(3, vec![(0x4000, false)])],
        ],
    );
    let mut sys = System::new(cfg, &pt, &*lru_factory());
    let res = sys.run();
    assert_eq!(res.nodes[3].l2_misses, 1);
    // The Table 3 record at node 3 must classify the home state Exclusive.
    let m = &res.table3;
    // Only one pair would need two misses to the same block; none here.
    assert_eq!(m.total_pairs(), 0);
    let lat = res.nodes[3].avg_miss_latency_ns();
    assert!(lat > 250.0, "dirty remote latency {lat}");
}

#[test]
fn exec_time_monotonic_in_work() {
    let cfg = four_node_cfg();
    let small = trace_of(4, &[vec![(0, (0..64).map(|i| (i * 64, false)).collect())]]);
    let large = trace_of(4, &[vec![(0, (0..512).map(|i| (i * 64, false)).collect())]]);
    let t_small = System::new(cfg.clone(), &small, &*lru_factory())
        .run()
        .exec_time_ps;
    let t_large = System::new(cfg, &large, &*lru_factory()).run().exec_time_ps;
    assert!(t_large > t_small);
}

#[test]
fn deterministic_runs() {
    let cfg = SystemConfig::table4(Clock::Mhz500);
    let w = mem_trace::workloads::OceanLike {
        n: 66,
        grids: 2,
        procs: 16,
        iters: 2,
        col_stride: 2,
        reduction_points: 64,
    };
    let pt = w.generate_phases(7);
    let a = System::new(cfg.clone(), &pt, &*lru_factory()).run();
    let b = System::new(cfg, &pt, &*lru_factory()).run();
    assert_eq!(a.exec_time_ps, b.exec_time_ps);
    assert_eq!(a.total_misses(), b.total_misses());
}

#[test]
fn full_machine_small_workload_with_cost_sensitive_policy() {
    let cfg = SystemConfig::table4(Clock::Mhz500);
    let w = mem_trace::workloads::OceanLike {
        n: 66,
        grids: 2,
        procs: 16,
        iters: 2,
        col_stride: 2,
        reduction_points: 64,
    };
    let pt = w.generate_phases(7);
    let lru = System::new(cfg.clone(), &pt, &*lru_factory()).run();
    let dcl = System::new(cfg, &pt, &|g: &cache_sim::Geometry| {
        Box::new(csr::Dcl::new(g)) as numa_sim::L2Policy
    })
    .run();
    // Both complete; refs identical (same streams).
    let refs = |r: &numa_sim::SimResult| r.nodes.iter().map(|n| n.refs).sum::<u64>();
    assert_eq!(refs(&lru), refs(&dcl));
    assert!(lru.exec_time_ps > 0 && dcl.exec_time_ps > 0);
}

#[test]
fn faster_clock_shortens_execution() {
    let w = mem_trace::workloads::OceanLike {
        n: 66,
        grids: 2,
        procs: 16,
        iters: 2,
        col_stride: 2,
        reduction_points: 64,
    };
    let pt = w.generate_phases(7);
    let slow = System::new(SystemConfig::table4(Clock::Mhz500), &pt, &*lru_factory()).run();
    let fast = System::new(SystemConfig::table4(Clock::Ghz1), &pt, &*lru_factory()).run();
    assert!(
        fast.exec_time_ps < slow.exec_time_ps,
        "1GHz {} !< 500MHz {}",
        fast.exec_time_ps,
        slow.exec_time_ps
    );
    // Memory latencies don't scale with the clock, so the speedup is < 2x.
    assert!(fast.exec_time_ps * 2 > slow.exec_time_ps);
}

#[test]
fn table3_pairs_accumulate_on_repeated_misses() {
    let cfg = four_node_cfg();
    // Node 0 and node 1 ping-pong a block: every access misses, producing
    // consecutive-miss pairs for both nodes.
    let mut phases = Vec::new();
    for _ in 0..4 {
        phases.push(vec![(0usize, vec![(0x5000u64, true)])]);
        phases.push(vec![(1usize, vec![(0x5000u64, true)])]);
    }
    let pt = trace_of(4, &phases);
    let res = System::new(cfg, &pt, &*lru_factory()).run();
    assert!(
        res.table3.total_pairs() >= 4,
        "pairs: {}",
        res.table3.total_pairs()
    );
    // Ping-pong writes are rd-excl misses on an Exclusive block.
    let idx = 5; // rx/E
    assert!(res.table3.cell(idx, idx).count > 0);
}
