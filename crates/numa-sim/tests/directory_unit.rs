//! Focused protocol-transition tests: drive the System through specific
//! directory state machines with hand-built phased traces and check the
//! message accounting each transition implies.

use mem_trace::Workload;
use numa_sim::{CostMode, System};

mod util;
use util::{cfg4, lru_factory, trace_of};

fn lru() -> Box<dyn Fn(&cache_sim::Geometry) -> numa_sim::L2Policy> {
    lru_factory()
}

#[test]
fn shared_to_exclusive_collects_invalidation_acks() {
    // Three readers share X; a fourth node writes it: all three sharers
    // must receive (and count) invalidations.
    let pt = trace_of(
        4,
        &[
            vec![(0, vec![(0x100, false)])],
            vec![(1, vec![(0x100, false)]), (2, vec![(0x100, false)])],
            vec![(3, vec![(0x100, true)])],
        ],
    );
    let res = System::new(cfg4(), &pt, &*lru()).run();
    for sharer in [0usize, 1, 2] {
        assert_eq!(res.nodes[sharer].invals_received, 1, "sharer {sharer}");
    }
    assert_eq!(
        res.nodes[3].invals_received, 0,
        "the writer is not invalidated"
    );
    assert_eq!(res.nodes[3].l2_misses, 1);
}

#[test]
fn upgrade_requires_no_data_transfer() {
    // Node 1 reads then writes while sole sharer alongside home node 0:
    // the write is an upgrade (counted), not a second miss.
    let pt = trace_of(
        4,
        &[
            vec![(0, vec![(0x200, false)])],
            vec![(1, vec![(0x200, false)])],
            vec![(1, vec![(0x200, true)])],
        ],
    );
    let mut sys = System::new(cfg4(), &pt, &*lru());
    let res = sys.run();
    assert_eq!(res.nodes[1].upgrades, 1);
    assert_eq!(res.nodes[1].l2_misses, 1, "only the initial read misses");
    let upgrade_flits = sys.mesh_stats().flits;

    // The same ending state reached via a full GetX (node 1 never holding
    // the block) must move strictly more flits: the upgrade carried no data.
    let pt_getx = trace_of(
        4,
        &[
            vec![(0, vec![(0x200, false)])],
            vec![(1, vec![(0x200, true)])],
        ],
    );
    let mut sys_getx = System::new(cfg4(), &pt_getx, &*lru());
    sys_getx.run();
    assert!(
        sys_getx.mesh_stats().flits > upgrade_flits - 12, // data reply ~10 flits + margin
        "a data-carrying GetX ({} flits) should not be cheaper than read+upgrade ({} flits)",
        sys_getx.mesh_stats().flits,
        upgrade_flits
    );
}

#[test]
fn writeback_then_refetch_round_trips_through_memory() {
    // Node 0 dirties many conflicting blocks so its own earlier block gets
    // evicted (WriteBack), then re-reads it: the refetch must succeed and
    // coherence must hold afterwards.
    let l2_sets = 64u64;
    let conflicting: Vec<(u64, bool)> = (0..10).map(|i| (0x400 + i * l2_sets * 64, true)).collect();
    let pt = trace_of(
        4,
        &[
            vec![(0, vec![(0x400, true)])],
            vec![(0, conflicting)],
            vec![(0, vec![(0x400, false)])],
        ],
    );
    let mut sys = System::new(cfg4(), &pt, &*lru());
    let res = sys.run();
    assert!(
        res.nodes[0].writebacks >= 1,
        "owned eviction must write back"
    );
    sys.validate_coherence()
        .expect("coherent after writeback/refetch");
}

#[test]
fn replacement_hints_prune_sharer_sets() {
    // Node 1 reads a block then conflict-evicts it (clean): the hint must
    // reach the home so node 2's later write needs NO invalidation of 1.
    let l2_sets = 64u64;
    let evictors: Vec<(u64, bool)> = (1..10).map(|i| (0x40 + i * l2_sets * 64, false)).collect();
    let pt = trace_of(
        4,
        &[
            vec![(0, vec![(0x40, false)])], // home + first reader
            vec![(1, vec![(0x40, false)])],
            vec![(1, evictors)], // push 0x40 out of node 1's L2
            vec![(2, vec![(0x40, true)])],
        ],
    );
    let res = System::new(cfg4(), &pt, &*lru()).run();
    assert!(res.nodes[1].repl_hints >= 1);
    assert_eq!(
        res.nodes[1].invals_received, 0,
        "hinted-out sharer must not be invalidated"
    );
}

#[test]
fn penalty_mode_changes_replacement_behaviour() {
    // A contended workload where stall attribution actually differs from
    // latency: with DCL at the L2, Penalty and Quantized cost modes must
    // produce different (deterministic) executions, proving the attribution
    // reaches the policy.
    let w = mem_trace::workloads::OceanLike {
        n: 66,
        grids: 2,
        procs: 16,
        iters: 3,
        col_stride: 1,
        reduction_points: 256,
    };
    let pt = w.generate_phases(5);
    let run_mode = |mode: CostMode| {
        let mut cfg = numa_sim::SystemConfig::table4(numa_sim::Clock::Mhz500);
        cfg.cost_mode = mode;
        cfg.max_load_overlap = 2; // force real stalls
        let mut sys = System::new(cfg, &pt, &|g: &cache_sim::Geometry| {
            Box::new(csr::Dcl::new(g)) as numa_sim::L2Policy
        });
        let res = sys.run();
        (res.exec_time_ps, res.total_misses())
    };
    let quant = run_mode(CostMode::Quantized(60));
    let pen = run_mode(CostMode::Penalty(60));
    assert_eq!(pt.total_refs(), pt.total_refs());
    assert_ne!(
        quant, pen,
        "penalty costs must steer DCL differently than latency costs"
    );
}

#[test]
fn stall_time_is_reported_when_overlap_is_tiny() {
    // With a 1-load overlap window, a pointer-chase of cold misses stalls
    // the CPU on every load.
    let chase: Vec<(u64, bool)> = (0..32).map(|i| (0x8000 + i * 64, false)).collect();
    let pt = trace_of(4, &[vec![(0, chase)]]);
    let mut cfg = cfg4();
    cfg.max_load_overlap = 1;
    let res = System::new(cfg, &pt, &*lru()).run();
    assert!(
        res.nodes[0].stall_ps > 30 * 90_000,
        "a serialized miss chain must accumulate stall time, got {}",
        res.nodes[0].stall_ps
    );
}
