//! Shared helpers for the numa-sim integration tests.

use cache_sim::Geometry;
use mem_trace::{Phase, PhasedTrace, ProcId, TraceRecord};
use numa_sim::{Clock, SystemConfig};

/// A 2x2-mesh Table-4 machine.
pub fn cfg4() -> SystemConfig {
    let mut cfg = SystemConfig::table4(Clock::Mhz500);
    cfg.num_nodes = 4;
    cfg
}

/// An LRU policy factory for `System::new`.
pub fn lru_factory() -> Box<dyn Fn(&Geometry) -> numa_sim::L2Policy> {
    Box::new(|_g: &Geometry| Box::new(cache_sim::Lru::new()))
}

/// One processor's references within a phase: `(proc, [(addr, is_write)])`.
pub type ProcRefs = (usize, Vec<(u64, bool)>);

/// Builds a phased trace from (phase -> proc -> list of (addr, is_write)).
pub fn trace_of(num_procs: usize, phases: &[Vec<ProcRefs>]) -> PhasedTrace {
    let mut pt = PhasedTrace::new(num_procs);
    for phase in phases {
        let mut streams = vec![Vec::new(); num_procs];
        for (proc, refs) in phase {
            for &(addr, w) in refs {
                let rec = if w {
                    TraceRecord::write(ProcId(*proc), cache_sim::Addr(addr))
                } else {
                    TraceRecord::read(ProcId(*proc), cache_sim::Addr(addr))
                };
                streams[*proc].push(rec);
            }
        }
        pt.push(Phase::from_streams(streams));
    }
    pt
}
