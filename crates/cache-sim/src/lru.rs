//! Least-recently-used replacement — the paper's baseline policy.

use crate::addr::{SetIndex, Way};
use crate::policy::{ReplacementPolicy, SetView};

/// Plain LRU: always evicts the block at the bottom of the recency stack.
///
/// The recency stack itself is maintained by the [`Cache`](crate::Cache), so
/// this policy is stateless.
///
/// # Examples
///
/// ```
/// use cache_sim::{Cache, Geometry, Lru, AccessType, Cost, BlockAddr};
///
/// let mut cache = Cache::new(Geometry::new(256, 64, 2), Lru::new());
/// let out = cache.access(BlockAddr(1), AccessType::Read, Cost(5));
/// assert!(!out.hit);
/// let out = cache.access(BlockAddr(1), AccessType::Read, Cost(5));
/// assert!(out.hit);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lru;

impl Lru {
    /// Creates a new LRU policy.
    #[must_use]
    pub fn new() -> Self {
        Lru
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn victim(&mut self, _set: SetIndex, view: &SetView<'_>) -> Way {
        view.lru().way
    }

    fn needs_view_on_hit(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BlockAddr;
    use crate::cost::Cost;
    use crate::policy::WayView;

    #[test]
    fn picks_lru_position() {
        let entries = vec![
            WayView {
                way: Way(1),
                block: BlockAddr(1),
                cost: Cost(1),
                dirty: false,
            },
            WayView {
                way: Way(0),
                block: BlockAddr(2),
                cost: Cost(9),
                dirty: false,
            },
        ];
        let mut p = Lru::new();
        assert_eq!(p.victim(SetIndex(0), &SetView::new(&entries)), Way(0));
        assert_eq!(p.name(), "LRU");
    }
}
