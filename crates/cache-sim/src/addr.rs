//! Address arithmetic: byte addresses, block addresses, and cache geometry.
//!
//! The simulator works internally on [`BlockAddr`]s (byte address divided by
//! the block size). [`Geometry`] owns the size/associativity/block-size
//! parameters and maps block addresses to set indices and tags.

use std::fmt;

/// A byte address in the simulated physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the block address containing this byte address for blocks of
    /// `block_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    #[must_use]
    pub fn block(self, block_bytes: u64) -> BlockAddr {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        BlockAddr(self.0 >> block_bytes.trailing_zeros())
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A block (cache-line) address: the byte address shifted right by the block
/// offset bits. Two byte addresses within the same cache line map to the same
/// `BlockAddr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The first byte address of this block for blocks of `block_bytes` bytes.
    #[must_use]
    pub fn base_addr(self, block_bytes: u64) -> Addr {
        Addr(self.0 << block_bytes.trailing_zeros())
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        BlockAddr(v)
    }
}

/// Index of a set within a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SetIndex(pub usize);

impl fmt::Display for SetIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set{}", self.0)
    }
}

/// Index of a way (blockframe) within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Way(pub usize);

impl fmt::Display for Way {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "way{}", self.0)
    }
}

/// The shape of a cache: total size, block size and associativity.
///
/// # Examples
///
/// The paper's basic L2 cache (16 KB, 4-way, 64-byte blocks) has 64 sets:
///
/// ```
/// use cache_sim::Geometry;
/// let g = Geometry::new(16 * 1024, 64, 4);
/// assert_eq!(g.num_sets(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    size_bytes: u64,
    block_bytes: u64,
    assoc: usize,
    num_sets: usize,
}

impl Geometry {
    /// Creates a new geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, if `block_bytes` is not a power of
    /// two, if `size_bytes` is not a whole number of sets, or if the
    /// derived set count is not a power of two (set indexing uses low
    /// address bits). Associativity itself need not be a power of two — a
    /// 192-byte, 3-way, single-set cache is valid.
    #[must_use]
    pub fn new(size_bytes: u64, block_bytes: u64, assoc: usize) -> Self {
        assert!(
            size_bytes > 0 && block_bytes > 0 && assoc > 0,
            "geometry parameters must be nonzero"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(
            size_bytes >= block_bytes * assoc as u64,
            "cache of {size_bytes} bytes cannot hold one set of {assoc} x {block_bytes}-byte blocks"
        );
        assert!(
            size_bytes.is_multiple_of(block_bytes * assoc as u64),
            "cache size must be a whole number of sets"
        );
        let num_sets = (size_bytes / (block_bytes * assoc as u64)) as usize;
        assert!(
            num_sets.is_power_of_two(),
            "derived set count must be a power of two"
        );
        Geometry {
            size_bytes,
            block_bytes,
            assoc,
            num_sets,
        }
    }

    /// A direct-mapped geometry (associativity 1).
    #[must_use]
    pub fn direct_mapped(size_bytes: u64, block_bytes: u64) -> Self {
        Geometry::new(size_bytes, block_bytes, 1)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Block (line) size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Number of ways per set.
    #[must_use]
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Maps a block address to its set.
    #[must_use]
    pub fn set_of(&self, block: BlockAddr) -> SetIndex {
        SetIndex((block.0 as usize) & (self.num_sets - 1))
    }

    /// Maps a byte address to its block address.
    #[must_use]
    pub fn block_of(&self, addr: Addr) -> BlockAddr {
        addr.block(self.block_bytes)
    }

    /// The tag of a block: the block address with the set-index bits removed.
    #[must_use]
    pub fn tag_of(&self, block: BlockAddr) -> u64 {
        block.0 >> self.num_sets.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_addr() {
        let a = Addr(0x1234);
        assert_eq!(a.block(64), BlockAddr(0x48));
        assert_eq!(BlockAddr(0x48).base_addr(64), Addr(0x1200));
    }

    #[test]
    fn paper_l2_geometry() {
        // 16 KB, 4-way, 64 B blocks => 64 sets (Section 3.1).
        let g = Geometry::new(16 * 1024, 64, 4);
        assert_eq!(g.num_sets(), 64);
        assert_eq!(g.assoc(), 4);
        assert_eq!(g.block_bytes(), 64);
    }

    #[test]
    fn paper_l1_geometry() {
        // 4 KB direct-mapped, 64 B blocks => 64 sets.
        let g = Geometry::direct_mapped(4 * 1024, 64);
        assert_eq!(g.num_sets(), 64);
        assert_eq!(g.assoc(), 1);
    }

    #[test]
    fn set_mapping_wraps() {
        let g = Geometry::new(16 * 1024, 64, 4);
        assert_eq!(g.set_of(BlockAddr(0)), SetIndex(0));
        assert_eq!(g.set_of(BlockAddr(63)), SetIndex(63));
        assert_eq!(g.set_of(BlockAddr(64)), SetIndex(0));
        assert_eq!(g.set_of(BlockAddr(65)), SetIndex(1));
    }

    #[test]
    fn tags_distinguish_conflicting_blocks() {
        let g = Geometry::new(16 * 1024, 64, 4);
        let b1 = BlockAddr(5);
        let b2 = BlockAddr(5 + 64);
        assert_eq!(g.set_of(b1), g.set_of(b2));
        assert_ne!(g.tag_of(b1), g.tag_of(b2));
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn rejects_ragged_size() {
        let _ = Geometry::new(3000, 64, 4);
    }

    #[test]
    fn non_pow2_associativity_is_fine() {
        let g = Geometry::new(192, 64, 3);
        assert_eq!(g.num_sets(), 1);
        assert_eq!(g.assoc(), 3);
        let g = Geometry::new(6 * 1024, 64, 3); // 32 sets x 3 ways
        assert_eq!(g.num_sets(), 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_set_count() {
        let _ = Geometry::new(192 * 3, 64, 3); // 3 sets
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn rejects_too_small_cache() {
        let _ = Geometry::new(64, 64, 4);
    }

    #[test]
    fn display_impls_nonempty() {
        assert_eq!(Addr(0x40).to_string(), "0x40");
        assert_eq!(BlockAddr(1).to_string(), "blk0x1");
        assert_eq!(SetIndex(3).to_string(), "set3");
        assert_eq!(Way(2).to_string(), "way2");
    }
}
