//! Per-cache access and cost accounting.

use crate::cost::Cost;

/// Counters accumulated by a [`Cache`](crate::Cache) over its lifetime.
///
/// The central metric of the paper is [`aggregate_cost`](Self::aggregate_cost):
/// the sum of the miss costs of every access that missed (hits cost 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Sum of the miss costs of all misses, `C(X)` in the paper.
    pub aggregate_cost: Cost,
    /// Blocks filled (equals misses for a demand-fill cache).
    pub fills: u64,
    /// Blocks evicted to make room for a fill.
    pub evictions: u64,
    /// Evicted blocks that were dirty (require writeback).
    pub dirty_evictions: u64,
    /// Evictions that chose a block other than the LRU block — i.e. fills
    /// that left a reservation in place (always 0 for plain LRU).
    pub non_lru_evictions: u64,
    /// Invalidation requests delivered to the cache.
    pub invalidations_requested: u64,
    /// Invalidation requests that found the block resident.
    pub invalidations_hit: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; 0 if no accesses were made.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio in `[0, 1]`; 0 if no accesses were made.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Average cost per access (aggregate cost / accesses); 0 if idle.
    #[must_use]
    pub fn cost_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.aggregate_cost.0 as f64 / self.accesses as f64
        }
    }
}

/// Relative cost savings of a policy versus a baseline, in percent:
/// `100 * (baseline - policy) / baseline` (Section 3.2 of the paper).
///
/// Returns 0 when the baseline cost is zero (nothing to save).
///
/// # Examples
///
/// ```
/// use cache_sim::{relative_savings_pct, Cost};
/// let s = relative_savings_pct(Cost(200), Cost(150));
/// assert!((s - 25.0).abs() < 1e-12);
/// // A policy that does worse than the baseline yields negative savings.
/// assert!(relative_savings_pct(Cost(100), Cost(110)) < 0.0);
/// ```
#[must_use]
pub fn relative_savings_pct(baseline: Cost, policy: Cost) -> f64 {
    if baseline.0 == 0 {
        0.0
    } else {
        100.0 * (baseline.0 as f64 - policy.0 as f64) / baseline.0 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            accesses: 10,
            hits: 7,
            misses: 3,
            ..Default::default()
        };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn rates_with_no_accesses() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.cost_per_access(), 0.0);
    }

    #[test]
    fn savings_formula() {
        assert_eq!(relative_savings_pct(Cost(0), Cost(0)), 0.0);
        assert!((relative_savings_pct(Cost(100), Cost(0)) - 100.0).abs() < 1e-12);
        assert!((relative_savings_pct(Cost(100), Cost(100))).abs() < 1e-12);
        assert!((relative_savings_pct(Cost(100), Cost(130)) + 30.0).abs() < 1e-12);
    }
}
