//! # cache-sim
//!
//! A set-associative cache simulator substrate with pluggable replacement
//! policies, built as the foundation for reproducing *Cost-Sensitive Cache
//! Replacement Algorithms* (Jeong & Dubois, HPCA 2003).
//!
//! The crate provides:
//!
//! * address arithmetic and cache [`Geometry`] ([`addr`]),
//! * the miss-[`Cost`] model, including the paper's two-static-cost
//!   configuration ([`cost`]),
//! * the [`ReplacementPolicy`] trait and the [`SetView`] through which
//!   policies observe a set in LRU-stack order ([`policy`]),
//! * the [`Cache`] engine with per-set recency stacks, statistics and
//!   coherence invalidations ([`cache`]),
//! * a [`TwoLevel`] hierarchy with an L1 filter, as used by the paper's
//!   trace-driven experiments ([`hierarchy`]),
//! * baseline policies: [`Lru`], [`Fifo`], [`RandomEvict`].
//!
//! Cost-sensitive policies (GD, BCL, DCL, ACL) live in the companion `csr`
//! crate.
//!
//! # Examples
//!
//! ```
//! use cache_sim::{Cache, Geometry, Lru, AccessType, Cost, BlockAddr};
//!
//! // The paper's basic L2: 16 KB, 4-way, 64-byte blocks.
//! let mut cache = Cache::new(Geometry::new(16 * 1024, 64, 4), Lru::new());
//! for b in 0..128u64 {
//!     cache.access(BlockAddr(b), AccessType::Read, Cost(1));
//! }
//! assert_eq!(cache.stats().misses, 128);
//! assert_eq!(cache.stats().aggregate_cost, Cost(128));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod cost;
pub mod fifo;
pub mod hierarchy;
pub mod lru;
pub mod policy;
pub mod random_policy;
pub mod stats;

pub use addr::{Addr, BlockAddr, Geometry, SetIndex, Way};
pub use cache::{AccessOutcome, AccessType, Cache, Evicted};
pub use cost::{Cost, CostPair};
pub use fifo::Fifo;
pub use hierarchy::{HierarchyOutcome, TwoLevel};
pub use lru::Lru;
pub use policy::{InvalidateKind, ReplacementPolicy, SetView, WayView};
pub use random_policy::RandomEvict;
pub use stats::{relative_savings_pct, CacheStats};
