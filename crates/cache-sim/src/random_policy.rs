//! Random replacement, a secondary baseline.
//!
//! Uses a small deterministic xorshift generator so runs are reproducible
//! without pulling a dependency into the substrate crate.

use crate::addr::{SetIndex, Way};
use crate::policy::{ReplacementPolicy, SetView};

/// Random replacement: evicts a uniformly random resident block.
#[derive(Debug, Clone)]
pub struct RandomEvict {
    state: u64,
}

impl RandomEvict {
    /// Creates a random policy seeded with `seed` (zero is remapped to a
    /// fixed nonzero constant, since xorshift cannot leave state zero).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomEvict {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl Default for RandomEvict {
    fn default() -> Self {
        RandomEvict::new(1)
    }
}

impl ReplacementPolicy for RandomEvict {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn victim(&mut self, _set: SetIndex, view: &SetView<'_>) -> Way {
        let idx = (self.next() % view.len() as u64) as usize;
        view.at(idx).way
    }

    fn needs_view_on_hit(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BlockAddr;
    use crate::cost::Cost;
    use crate::policy::WayView;

    #[test]
    fn deterministic_for_same_seed() {
        let entries: Vec<WayView> = (0..4)
            .map(|i| WayView {
                way: Way(i),
                block: BlockAddr(i as u64),
                cost: Cost(1),
                dirty: false,
            })
            .collect();
        let view = SetView::new(&entries);
        let mut a = RandomEvict::new(42);
        let mut b = RandomEvict::new(42);
        for _ in 0..100 {
            assert_eq!(a.victim(SetIndex(0), &view), b.victim(SetIndex(0), &view));
        }
    }

    #[test]
    fn covers_all_ways_eventually() {
        let entries: Vec<WayView> = (0..4)
            .map(|i| WayView {
                way: Way(i),
                block: BlockAddr(i as u64),
                cost: Cost(1),
                dirty: false,
            })
            .collect();
        let view = SetView::new(&entries);
        let mut p = RandomEvict::new(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[p.victim(SetIndex(0), &view).0] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "random policy should touch every way"
        );
    }
}
