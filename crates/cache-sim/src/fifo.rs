//! First-in-first-out replacement, a secondary baseline.

use crate::addr::{BlockAddr, SetIndex, Way};
use crate::cost::Cost;
use crate::policy::{InvalidateKind, ReplacementPolicy, SetView};

/// FIFO: evicts the block that was filled into the set the longest ago,
/// regardless of hits since then.
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    /// Per-set fill order, oldest first.
    queues: Vec<Vec<Way>>,
}

impl Fifo {
    /// Creates a FIFO policy for a cache with `num_sets` sets.
    #[must_use]
    pub fn new(num_sets: usize) -> Self {
        Fifo {
            queues: vec![Vec::new(); num_sets],
        }
    }

    fn queue(&mut self, set: SetIndex) -> &mut Vec<Way> {
        if self.queues.len() <= set.0 {
            self.queues.resize(set.0 + 1, Vec::new());
        }
        &mut self.queues[set.0]
    }
}

impl ReplacementPolicy for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn victim(&mut self, set: SetIndex, view: &SetView<'_>) -> Way {
        let q = self.queue(set);
        // The oldest queued way that is still resident; falls back to the LRU
        // block if bookkeeping ever desynchronizes (it should not).
        match q.first().copied() {
            Some(w) => w,
            None => view.lru().way,
        }
    }

    fn needs_view_on_hit(&self) -> bool {
        false
    }

    fn on_fill(&mut self, set: SetIndex, _block: BlockAddr, way: Way, _cost: Cost) {
        let q = self.queue(set);
        q.retain(|&w| w != way);
        q.push(way);
    }

    fn on_invalidate(
        &mut self,
        set: SetIndex,
        _block: BlockAddr,
        resident: Option<(Way, usize)>,
        _kind: InvalidateKind,
    ) {
        if let Some((way, _)) = resident {
            self.queue(set).retain(|&w| w != way);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Geometry;
    use crate::cache::{AccessType, Cache};

    #[test]
    fn evicts_in_fill_order_despite_hits() {
        // 2-way set; fill A then B, touch A, fill C: FIFO evicts A (oldest
        // fill) even though A is the MRU block.
        let geom = Geometry::new(128, 64, 2); // one set
        let mut c = Cache::new(geom, Fifo::new(1));
        let (a, b, x) = (BlockAddr(0), BlockAddr(1), BlockAddr(2));
        c.access(a, AccessType::Read, Cost(1));
        c.access(b, AccessType::Read, Cost(1));
        assert!(c.access(a, AccessType::Read, Cost(1)).hit);
        c.access(x, AccessType::Read, Cost(1));
        assert!(!c.contains(a), "FIFO must evict the oldest fill");
        assert!(c.contains(b));
        assert!(c.contains(x));
    }

    #[test]
    fn invalidation_removes_from_queue() {
        let geom = Geometry::new(128, 64, 2);
        let mut c = Cache::new(geom, Fifo::new(1));
        let (a, b, x) = (BlockAddr(0), BlockAddr(1), BlockAddr(2));
        c.access(a, AccessType::Read, Cost(1));
        c.access(b, AccessType::Read, Cost(1));
        c.invalidate(a, InvalidateKind::Coherence);
        c.access(x, AccessType::Read, Cost(1)); // fills the invalid way
        assert!(c.contains(b) && c.contains(x));
        // Next fill should evict b (oldest remaining), not x.
        c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(!c.contains(b));
        assert!(c.contains(x));
    }
}
