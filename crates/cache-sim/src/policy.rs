//! The replacement-policy interface.
//!
//! A [`ReplacementPolicy`] is driven by a [`Cache`](crate::Cache): the cache
//! maintains residency and the LRU recency stack of every set, and consults
//! the policy for victim selection, notifying it of hits, misses, fills and
//! invalidations. The cache presents each set to the policy as a [`SetView`]
//! in **MRU → LRU order**, mirroring the paper's `c(1)` (MRU) … `c(s)` (LRU)
//! notation (with 0-based indices here: position 0 is MRU, `len()-1` is LRU).
//!
//! # Contract
//!
//! * [`ReplacementPolicy::victim`] is called **exactly once** per replacement
//!   and only when the set is full; the returned way **will** be evicted.
//!   Policies may therefore perform bookkeeping side effects inside `victim`
//!   (e.g. BCL's `Acost` depreciation, DCL's ETD allocation).
//! * Hit notifications are delivered *before* the accessed block is promoted
//!   to the MRU position, so the view still shows the pre-access stack.
//! * [`ReplacementPolicy::on_miss`] is delivered for every access that misses,
//!   before victim selection (and also when the fill uses an empty way) —
//!   this is where DCL/ACL probe their Extended Tag Directory.

use crate::addr::{BlockAddr, SetIndex, Way};
use crate::cost::Cost;

/// The view of one resident blockframe, as presented to a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayView {
    /// Which physical way holds the block.
    pub way: Way,
    /// The resident block.
    pub block: BlockAddr,
    /// The block's miss cost, loaded at fill time.
    pub cost: Cost,
    /// Whether the block is dirty.
    pub dirty: bool,
}

/// A snapshot of one set's **valid** blockframes in MRU → LRU order.
#[derive(Debug)]
pub struct SetView<'a> {
    entries: &'a [WayView],
}

impl<'a> SetView<'a> {
    /// Wraps a slice of way views that must already be in MRU → LRU order.
    #[must_use]
    pub fn new(entries: &'a [WayView]) -> Self {
        SetView { entries }
    }

    /// Number of valid blocks in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set holds no valid block.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The block at stack position `pos` (0 = MRU, `len()-1` = LRU).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    #[must_use]
    pub fn at(&self, pos: usize) -> &WayView {
        &self.entries[pos]
    }

    /// The most recently used block.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    #[must_use]
    pub fn mru(&self) -> &WayView {
        self.entries.first().expect("mru() on empty set")
    }

    /// The least recently used block.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    #[must_use]
    pub fn lru(&self) -> &WayView {
        self.entries.last().expect("lru() on empty set")
    }

    /// Iterates in MRU → LRU order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &WayView> + ExactSizeIterator {
        self.entries.iter()
    }

    /// The stack position of `way`, if valid in this set.
    #[must_use]
    pub fn position_of(&self, way: Way) -> Option<usize> {
        self.entries.iter().position(|e| e.way == way)
    }
}

/// Why a block left the cache, as reported to [`ReplacementPolicy::on_invalidate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidateKind {
    /// A coherence invalidation (e.g. a remote write in a multiprocessor).
    Coherence,
    /// An inclusion-driven back-invalidation from another cache level.
    Inclusion,
    /// Explicit flush by the user of the cache.
    Flush,
}

/// A cache replacement policy.
///
/// All methods except [`victim`](Self::victim) have no-op defaults so simple
/// policies (e.g. plain LRU) implement only what they need.
pub trait ReplacementPolicy {
    /// A short human-readable name ("LRU", "GD", "BCL", …).
    fn name(&self) -> &'static str;

    /// Selects the way to evict from a **full** set. Called exactly once per
    /// replacement; the returned way will be evicted.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `view` is not full (`view.len()` less
    /// than the associativity they were configured with).
    fn victim(&mut self, set: SetIndex, view: &SetView<'_>) -> Way;

    /// Whether this policy inspects the [`SetView`] in
    /// [`on_hit`](Self::on_hit). Returning `false` (as the simple baselines
    /// do) lets the cache skip building the view on the hit path — the
    /// hottest loop of every simulation. Policies that return `false`
    /// receive an **empty** view in `on_hit`.
    fn needs_view_on_hit(&self) -> bool {
        true
    }

    /// An access hit on `way`, currently at stack position `stack_pos`
    /// (0 = MRU). The view shows the stack *before* promotion to MRU.
    fn on_hit(&mut self, set: SetIndex, view: &SetView<'_>, way: Way, stack_pos: usize) {
        let _ = (set, view, way, stack_pos);
    }

    /// An access to `block` missed in the set. Delivered before victim
    /// selection or fill.
    fn on_miss(&mut self, set: SetIndex, view: &SetView<'_>, block: BlockAddr) {
        let _ = (set, view, block);
    }

    /// `block` was filled into `way` with miss cost `cost`.
    fn on_fill(&mut self, set: SetIndex, block: BlockAddr, way: Way, cost: Cost) {
        let _ = (set, block, way, cost);
    }

    /// `block` was invalidated. `resident` carries the way and stack position
    /// the block occupied if it was resident in the cache; policies with
    /// shadow state (e.g. DCL's ETD) must also handle non-resident blocks.
    fn on_invalidate(
        &mut self,
        set: SetIndex,
        block: BlockAddr,
        resident: Option<(Way, usize)>,
        kind: InvalidateKind,
    ) {
        let _ = (set, block, resident, kind);
    }
}

impl<P: ReplacementPolicy + ?Sized> ReplacementPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn victim(&mut self, set: SetIndex, view: &SetView<'_>) -> Way {
        (**self).victim(set, view)
    }
    fn needs_view_on_hit(&self) -> bool {
        (**self).needs_view_on_hit()
    }
    fn on_hit(&mut self, set: SetIndex, view: &SetView<'_>, way: Way, stack_pos: usize) {
        (**self).on_hit(set, view, way, stack_pos);
    }
    fn on_miss(&mut self, set: SetIndex, view: &SetView<'_>, block: BlockAddr) {
        (**self).on_miss(set, view, block);
    }
    fn on_fill(&mut self, set: SetIndex, block: BlockAddr, way: Way, cost: Cost) {
        (**self).on_fill(set, block, way, cost);
    }
    fn on_invalidate(
        &mut self,
        set: SetIndex,
        block: BlockAddr,
        resident: Option<(Way, usize)>,
        kind: InvalidateKind,
    ) {
        (**self).on_invalidate(set, block, resident, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<WayView> {
        vec![
            WayView {
                way: Way(2),
                block: BlockAddr(10),
                cost: Cost(1),
                dirty: false,
            },
            WayView {
                way: Way(0),
                block: BlockAddr(20),
                cost: Cost(8),
                dirty: true,
            },
            WayView {
                way: Way(1),
                block: BlockAddr(30),
                cost: Cost(1),
                dirty: false,
            },
        ]
    }

    #[test]
    fn view_orientation() {
        let entries = sample_entries();
        let v = SetView::new(&entries);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.mru().block, BlockAddr(10));
        assert_eq!(v.lru().block, BlockAddr(30));
        assert_eq!(v.at(1).cost, Cost(8));
    }

    #[test]
    fn position_lookup() {
        let entries = sample_entries();
        let v = SetView::new(&entries);
        assert_eq!(v.position_of(Way(1)), Some(2));
        assert_eq!(v.position_of(Way(0)), Some(1));
        assert_eq!(v.position_of(Way(7)), None);
    }

    #[test]
    fn iter_is_mru_to_lru() {
        let entries = sample_entries();
        let v = SetView::new(&entries);
        let blocks: Vec<_> = v.iter().map(|e| e.block.0).collect();
        assert_eq!(blocks, vec![10, 20, 30]);
    }

    #[test]
    fn boxed_policy_dispatches() {
        struct AlwaysLru;
        impl ReplacementPolicy for AlwaysLru {
            fn name(&self) -> &'static str {
                "test"
            }
            fn victim(&mut self, _set: SetIndex, view: &SetView<'_>) -> Way {
                view.lru().way
            }
        }
        let mut boxed: Box<dyn ReplacementPolicy> = Box::new(AlwaysLru);
        let entries = sample_entries();
        let v = SetView::new(&entries);
        assert_eq!(boxed.name(), "test");
        assert_eq!(boxed.victim(SetIndex(0), &v), Way(1));
    }
}
