//! A two-level cache hierarchy: a small direct-mapped L1 filter in front of
//! the L2 under study, matching the paper's trace-driven methodology
//! (Section 3.1: 4 KB direct-mapped L1, 16 KB 4-way L2, 64-byte blocks).
//!
//! Inclusion is enforced: evicting or invalidating a block from the L2
//! back-invalidates it from the L1, so the L2 always supersets the L1.

use crate::addr::{BlockAddr, Geometry};
use crate::cache::{AccessType, Cache};
use crate::cost::Cost;
use crate::lru::Lru;
use crate::policy::{InvalidateKind, ReplacementPolicy};

/// The result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Whether the access hit in the L1.
    pub l1_hit: bool,
    /// Whether the access hit in the L2 (`None` when the L1 hit and the L2
    /// was never consulted).
    pub l2_hit: Option<bool>,
    /// Cost charged (0 unless the access missed both levels).
    pub cost_charged: Cost,
}

/// A two-level hierarchy with an LRU L1 filter and a pluggable-policy L2.
///
/// # Examples
///
/// ```
/// use cache_sim::{TwoLevel, Geometry, Lru, AccessType, Cost, BlockAddr};
///
/// let mut h = TwoLevel::new(
///     Geometry::direct_mapped(4 * 1024, 64),
///     Geometry::new(16 * 1024, 64, 4),
///     Lru::new(),
/// );
/// let out = h.access(BlockAddr(3), AccessType::Read, Cost(8));
/// assert!(!out.l1_hit);
/// assert_eq!(out.l2_hit, Some(false));
/// assert_eq!(out.cost_charged, Cost(8));
/// // Now resident in both levels: an L1 hit never consults the L2.
/// let out = h.access(BlockAddr(3), AccessType::Read, Cost(8));
/// assert!(out.l1_hit);
/// assert_eq!(out.l2_hit, None);
/// ```
#[derive(Debug)]
pub struct TwoLevel<P> {
    l1: Cache<Lru>,
    l2: Cache<P>,
    /// Dirty L1 copies dropped by inclusion back-invalidations. The L2's
    /// copy of such a block may be stale-clean at its own eviction, so
    /// `l2.stats().dirty_evictions` undercounts writebacks by up to this
    /// amount.
    dirty_backinvalidations: u64,
}

impl<P: ReplacementPolicy> TwoLevel<P> {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the two levels have different block sizes.
    #[must_use]
    pub fn new(l1_geom: Geometry, l2_geom: Geometry, l2_policy: P) -> Self {
        assert_eq!(
            l1_geom.block_bytes(),
            l2_geom.block_bytes(),
            "L1 and L2 must share a block size"
        );
        TwoLevel {
            l1: Cache::new(l1_geom, Lru::new()),
            l2: Cache::new(l2_geom, l2_policy),
            dirty_backinvalidations: 0,
        }
    }

    /// The L1 filter cache.
    #[must_use]
    pub fn l1(&self) -> &Cache<Lru> {
        &self.l1
    }

    /// The L2 cache under study.
    #[must_use]
    pub fn l2(&self) -> &Cache<P> {
        &self.l2
    }

    /// Mutable access to the L2 (e.g. to read or update policy state).
    pub fn l2_mut(&mut self) -> &mut Cache<P> {
        &mut self.l2
    }

    /// Performs one access. `l2_miss_cost` is charged only if the reference
    /// misses both levels.
    pub fn access(
        &mut self,
        block: BlockAddr,
        op: AccessType,
        l2_miss_cost: Cost,
    ) -> HierarchyOutcome {
        // L1 lookup: an L1 hit never reaches the L2 (the L2's recency and
        // policy state see only the L1 miss stream, as in the paper).
        let l1_out = self.l1.access(block, op, Cost::ZERO);
        if l1_out.hit {
            return HierarchyOutcome {
                l1_hit: true,
                l2_hit: None,
                cost_charged: Cost::ZERO,
            };
        }

        // The L1 fill may have displaced a dirty block: write it back into
        // the (inclusive) L2 without disturbing the L2 recency stack.
        if let Some(ev) = l1_out.evicted {
            if ev.dirty {
                self.l2.writeback(ev.block);
            }
        }

        let l2_out = self.l2.access(block, op, l2_miss_cost);
        // Inclusion: an L2 eviction back-invalidates the L1. A dirty L1
        // copy dropped here held data newer than the L2's (its writeback
        // would go to memory in a real system); count it so writeback
        // accounting stays auditable.
        if let Some(ev) = l2_out.evicted {
            if let Some(l1_ev) = self.l1.invalidate(ev.block, InvalidateKind::Inclusion) {
                if l1_ev.dirty {
                    self.dirty_backinvalidations += 1;
                }
            }
        }
        HierarchyOutcome {
            l1_hit: false,
            l2_hit: Some(l2_out.hit),
            cost_charged: l2_out.cost_charged,
        }
    }

    /// Dirty L1 copies dropped by inclusion back-invalidations so far.
    #[must_use]
    pub fn dirty_backinvalidations(&self) -> u64 {
        self.dirty_backinvalidations
    }

    /// Delivers a coherence invalidation to both levels (and, through the
    /// policy hook, to shadow state such as DCL's ETD).
    pub fn invalidate(&mut self, block: BlockAddr) {
        self.l1.invalidate(block, InvalidateKind::Coherence);
        self.l2.invalidate(block, InvalidateKind::Coherence);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hierarchy() -> TwoLevel<Lru> {
        // L1: 2 sets direct-mapped; L2: 2 sets, 2-way.
        TwoLevel::new(
            Geometry::direct_mapped(128, 64),
            Geometry::new(256, 64, 2),
            Lru::new(),
        )
    }

    #[test]
    fn l1_filters_l2_accesses() {
        let mut h = small_hierarchy();
        h.access(BlockAddr(0), AccessType::Read, Cost(1));
        h.access(BlockAddr(0), AccessType::Read, Cost(1));
        h.access(BlockAddr(0), AccessType::Read, Cost(1));
        assert_eq!(h.l1().stats().accesses, 3);
        assert_eq!(h.l2().stats().accesses, 1, "L1 hits must not reach the L2");
    }

    #[test]
    fn cost_charged_only_on_double_miss() {
        let mut h = small_hierarchy();
        let out = h.access(BlockAddr(0), AccessType::Read, Cost(7));
        assert_eq!(out.cost_charged, Cost(7));
        // Conflict-evict block 0 from the tiny L1 (block 2 maps to L1 set 0),
        // but it remains in the 2-way L2 set 0.
        h.access(BlockAddr(2), AccessType::Read, Cost(7));
        let out = h.access(BlockAddr(0), AccessType::Read, Cost(7));
        assert!(!out.l1_hit);
        assert_eq!(out.l2_hit, Some(true));
        assert_eq!(out.cost_charged, Cost::ZERO);
    }

    #[test]
    fn inclusion_back_invalidates_l1() {
        let mut h = small_hierarchy();
        // Fill L2 set 0 beyond capacity: blocks 0, 2, 4 all map to L2 set 0.
        h.access(BlockAddr(0), AccessType::Read, Cost(1));
        h.access(BlockAddr(2), AccessType::Read, Cost(1));
        h.access(BlockAddr(4), AccessType::Read, Cost(1)); // evicts 0 from L2
        assert!(!h.l2().contains(BlockAddr(0)));
        assert!(
            !h.l1().contains(BlockAddr(0)),
            "inclusion must back-invalidate L1"
        );
    }

    #[test]
    fn coherence_invalidation_hits_both_levels() {
        let mut h = small_hierarchy();
        h.access(BlockAddr(0), AccessType::Write, Cost(1));
        assert!(h.l1().contains(BlockAddr(0)));
        assert!(h.l2().contains(BlockAddr(0)));
        h.invalidate(BlockAddr(0));
        assert!(!h.l1().contains(BlockAddr(0)));
        assert!(!h.l2().contains(BlockAddr(0)));
    }

    #[test]
    fn dirty_l1_victim_marks_l2_dirty() {
        let mut h = small_hierarchy();
        h.access(BlockAddr(0), AccessType::Write, Cost(1)); // dirty in L1
        h.access(BlockAddr(2), AccessType::Read, Cost(1)); // L1 conflict evicts 0
                                                           // L2 copy of 0 must now be dirty: evicting it from L2 reports dirty.
        h.access(BlockAddr(4), AccessType::Read, Cost(1)); // L2 set 0 full -> evicts 0 (LRU)
        assert_eq!(h.l2().stats().dirty_evictions, 1);
    }
}
