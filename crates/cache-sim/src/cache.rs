//! The set-associative cache engine.
//!
//! [`Cache`] owns residency, per-set LRU recency stacks and statistics; the
//! replacement decision is delegated to a [`ReplacementPolicy`]. Costs are
//! supplied by the caller at access time ("loaded at the time of miss",
//! Section 2.3 of the paper) and stored with the blockframe so policies can
//! compare the future miss costs of resident blocks.

use crate::addr::{BlockAddr, Geometry, SetIndex, Way};
use crate::cost::Cost;
use crate::policy::{InvalidateKind, ReplacementPolicy, SetView, WayView};
use crate::stats::CacheStats;

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// A load.
    Read,
    /// A store (marks the block dirty; write-allocate on miss).
    Write,
}

/// A block displaced from the cache by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced block.
    pub block: BlockAddr,
    /// Whether it was dirty (needs writeback).
    pub dirty: bool,
    /// The miss cost it was loaded with.
    pub cost: Cost,
    /// Whether it occupied the LRU position when evicted. `false` means the
    /// replacement left a higher-cost block reserved below it.
    pub was_lru: bool,
}

/// The result of one [`Cache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// The way that holds the block after the access.
    pub way: Way,
    /// Cost charged for this access (0 on a hit, the supplied miss cost on a
    /// miss).
    pub cost_charged: Cost,
    /// Block displaced by the fill, if any.
    pub evicted: Option<Evicted>,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    block: Option<BlockAddr>,
    dirty: bool,
    cost: Cost,
}

#[derive(Debug, Clone)]
struct SetState {
    frames: Vec<Frame>,
    /// Valid ways in MRU → LRU order.
    recency: Vec<Way>,
}

impl SetState {
    fn new(assoc: usize) -> Self {
        SetState {
            frames: vec![
                Frame {
                    block: None,
                    dirty: false,
                    cost: Cost::ZERO
                };
                assoc
            ],
            recency: Vec::with_capacity(assoc),
        }
    }

    fn way_of(&self, block: BlockAddr) -> Option<Way> {
        self.frames
            .iter()
            .position(|f| f.block == Some(block))
            .map(Way)
    }

    fn first_invalid(&self) -> Option<Way> {
        self.frames.iter().position(|f| f.block.is_none()).map(Way)
    }

    fn promote(&mut self, way: Way) {
        self.recency.retain(|&w| w != way);
        self.recency.insert(0, way);
    }

    fn remove(&mut self, way: Way) {
        self.recency.retain(|&w| w != way);
    }
}

/// A set-associative, write-back, write-allocate cache with a pluggable
/// replacement policy.
///
/// # Examples
///
/// Costs are charged only on misses:
///
/// ```
/// use cache_sim::{Cache, Geometry, Lru, AccessType, Cost, BlockAddr};
///
/// let mut c = Cache::new(Geometry::new(16 * 1024, 64, 4), Lru::new());
/// c.access(BlockAddr(7), AccessType::Read, Cost(8));  // miss: charges 8
/// c.access(BlockAddr(7), AccessType::Read, Cost(8));  // hit: charges 0
/// assert_eq!(c.stats().aggregate_cost, Cost(8));
/// ```
#[derive(Debug)]
pub struct Cache<P> {
    geom: Geometry,
    sets: Vec<SetState>,
    policy: P,
    stats: CacheStats,
    scratch: Vec<WayView>,
}

impl<P: ReplacementPolicy> Cache<P> {
    /// Creates an empty cache of the given geometry using `policy`.
    #[must_use]
    pub fn new(geom: Geometry, policy: P) -> Self {
        let sets = (0..geom.num_sets())
            .map(|_| SetState::new(geom.assoc()))
            .collect();
        Cache {
            geom,
            sets,
            policy,
            stats: CacheStats::default(),
            scratch: Vec::with_capacity(geom.assoc()),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The replacement policy (e.g. to read policy-specific statistics).
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the replacement policy.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Whether `block` is resident. No side effects.
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.sets[self.geom.set_of(block).0].way_of(block).is_some()
    }

    /// The stored miss cost of `block`, if resident. No side effects.
    #[must_use]
    pub fn cost_of(&self, block: BlockAddr) -> Option<Cost> {
        let set = &self.sets[self.geom.set_of(block).0];
        set.way_of(block).map(|w| set.frames[w.0].cost)
    }

    /// Updates the stored miss cost of `block` (e.g. when a latency
    /// predictor produces a fresher estimate). Returns `true` if resident.
    pub fn update_cost(&mut self, block: BlockAddr, cost: Cost) -> bool {
        let set = &mut self.sets[self.geom.set_of(block).0];
        match set.way_of(block) {
            Some(w) => {
                set.frames[w.0].cost = cost;
                true
            }
            None => false,
        }
    }

    /// The resident blocks of `set` in MRU → LRU order (for tests and
    /// debugging).
    #[must_use]
    pub fn recency_of(&self, set: SetIndex) -> Vec<BlockAddr> {
        let s = &self.sets[set.0];
        s.recency
            .iter()
            .map(|&w| {
                s.frames[w.0]
                    .block
                    .expect("recency stack holds only valid ways")
            })
            .collect()
    }

    fn rebuild_scratch(&mut self, set: SetIndex) {
        self.scratch.clear();
        let s = &self.sets[set.0];
        for &w in &s.recency {
            let f = &s.frames[w.0];
            self.scratch.push(WayView {
                way: w,
                block: f.block.expect("recency stack holds only valid ways"),
                cost: f.cost,
                dirty: f.dirty,
            });
        }
    }

    /// Performs one access. On a miss the block is filled with `miss_cost`
    /// charged and stored in the blockframe; on a hit nothing is charged.
    ///
    /// The returned [`AccessOutcome`] reports the eviction (if any) so the
    /// caller can model writebacks or replacement hints.
    pub fn access(&mut self, block: BlockAddr, op: AccessType, miss_cost: Cost) -> AccessOutcome {
        let set = self.geom.set_of(block);
        self.stats.accesses += 1;
        match op {
            AccessType::Read => self.stats.reads += 1,
            AccessType::Write => self.stats.writes += 1,
        }

        let resident = self.sets[set.0].way_of(block);

        if let Some(way) = resident {
            let stack_pos = self.sets[set.0]
                .recency
                .iter()
                .position(|&w| w == way)
                .expect("resident block must be on the recency stack");
            if self.policy.needs_view_on_hit() {
                self.rebuild_scratch(set);
            } else {
                self.scratch.clear();
            }
            self.policy
                .on_hit(set, &SetView::new(&self.scratch), way, stack_pos);
            let s = &mut self.sets[set.0];
            s.promote(way);
            if op == AccessType::Write {
                s.frames[way.0].dirty = true;
            }
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                way,
                cost_charged: Cost::ZERO,
                evicted: None,
            };
        }

        // Miss path.
        self.stats.misses += 1;
        self.rebuild_scratch(set);
        self.policy
            .on_miss(set, &SetView::new(&self.scratch), block);

        let (way, evicted) = match self.sets[set.0].first_invalid() {
            Some(w) => (w, None),
            None => {
                let victim = self.policy.victim(set, &SetView::new(&self.scratch));
                let s = &self.sets[set.0];
                assert!(
                    s.frames[victim.0].block.is_some(),
                    "policy chose an invalid way as victim"
                );
                let was_lru = s.recency.last() == Some(&victim);
                let f = s.frames[victim.0];
                let ev = Evicted {
                    block: f.block.expect("victim frame must be valid"),
                    dirty: f.dirty,
                    cost: f.cost,
                    was_lru,
                };
                let s = &mut self.sets[set.0];
                s.remove(victim);
                s.frames[victim.0] = Frame {
                    block: None,
                    dirty: false,
                    cost: Cost::ZERO,
                };
                self.stats.evictions += 1;
                if ev.dirty {
                    self.stats.dirty_evictions += 1;
                }
                if !was_lru {
                    self.stats.non_lru_evictions += 1;
                }
                (victim, Some(ev))
            }
        };

        let s = &mut self.sets[set.0];
        s.frames[way.0] = Frame {
            block: Some(block),
            dirty: op == AccessType::Write,
            cost: miss_cost,
        };
        s.promote(way);
        self.stats.fills += 1;
        self.stats.aggregate_cost += miss_cost;
        self.policy.on_fill(set, block, way, miss_cost);

        AccessOutcome {
            hit: false,
            way,
            cost_charged: miss_cost,
            evicted,
        }
    }

    /// Invalidates `block` if resident (and notifies the policy either way,
    /// so shadow structures like DCL's ETD can drop their entries too).
    ///
    /// Returns the displaced block state if it was resident.
    pub fn invalidate(&mut self, block: BlockAddr, kind: InvalidateKind) -> Option<Evicted> {
        let set = self.geom.set_of(block);
        self.stats.invalidations_requested += 1;
        let resident = self.sets[set.0].way_of(block);
        match resident {
            Some(way) => {
                let s = &self.sets[set.0];
                let pos = s
                    .recency
                    .iter()
                    .position(|&w| w == way)
                    .expect("resident block must be on the recency stack");
                let was_lru = pos + 1 == s.recency.len();
                let f = s.frames[way.0];
                self.policy
                    .on_invalidate(set, block, Some((way, pos)), kind);
                let s = &mut self.sets[set.0];
                s.remove(way);
                s.frames[way.0] = Frame {
                    block: None,
                    dirty: false,
                    cost: Cost::ZERO,
                };
                self.stats.invalidations_hit += 1;
                Some(Evicted {
                    block,
                    dirty: f.dirty,
                    cost: f.cost,
                    was_lru,
                })
            }
            None => {
                self.policy.on_invalidate(set, block, None, kind);
                None
            }
        }
    }

    /// Marks `block` dirty *without* touching the recency stack, statistics
    /// or the policy — models a writeback arriving from an upper cache
    /// level. Returns `true` if the block was resident.
    pub fn writeback(&mut self, block: BlockAddr) -> bool {
        let set = &mut self.sets[self.geom.set_of(block).0];
        match set.way_of(block) {
            Some(w) => {
                set.frames[w.0].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Iterates over all resident blocks (set by set, MRU → LRU within each).
    pub fn resident_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.sets.iter().flat_map(|s| {
            s.recency.iter().map(|&w| {
                s.frames[w.0]
                    .block
                    .expect("recency stack holds only valid ways")
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;

    fn one_set_cache(assoc: usize) -> Cache<Lru> {
        Cache::new(Geometry::new(64 * assoc as u64, 64, assoc), Lru::new())
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = one_set_cache(2);
        let out = c.access(BlockAddr(1), AccessType::Read, Cost(4));
        assert!(!out.hit);
        assert_eq!(out.cost_charged, Cost(4));
        let out = c.access(BlockAddr(1), AccessType::Write, Cost(4));
        assert!(out.hit);
        assert_eq!(out.cost_charged, Cost::ZERO);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().aggregate_cost, Cost(4));
        assert_eq!(c.stats().reads, 1);
        assert_eq!(c.stats().writes, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = one_set_cache(2);
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.access(BlockAddr(1), AccessType::Read, Cost(1)); // 1 becomes MRU
        let out = c.access(BlockAddr(3), AccessType::Read, Cost(1));
        let ev = out.evicted.expect("full set must evict");
        assert_eq!(ev.block, BlockAddr(2));
        assert!(ev.was_lru);
        assert!(c.contains(BlockAddr(1)));
        assert!(c.contains(BlockAddr(3)));
    }

    #[test]
    fn recency_stack_is_mru_first() {
        let mut c = one_set_cache(4);
        for b in [1u64, 2, 3, 4] {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        assert_eq!(
            c.recency_of(SetIndex(0)),
            vec![BlockAddr(4), BlockAddr(3), BlockAddr(2), BlockAddr(1)]
        );
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert_eq!(
            c.recency_of(SetIndex(0)),
            vec![BlockAddr(2), BlockAddr(4), BlockAddr(3), BlockAddr(1)]
        );
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = one_set_cache(1);
        c.access(BlockAddr(1), AccessType::Write, Cost(1));
        let out = c.access(BlockAddr(2), AccessType::Read, Cost(1));
        assert!(out.evicted.expect("eviction").dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn invalidate_removes_and_reports() {
        let mut c = one_set_cache(2);
        c.access(BlockAddr(1), AccessType::Write, Cost(3));
        let ev = c
            .invalidate(BlockAddr(1), InvalidateKind::Coherence)
            .expect("resident");
        assert!(ev.dirty);
        assert_eq!(ev.cost, Cost(3));
        assert!(!c.contains(BlockAddr(1)));
        assert!(c
            .invalidate(BlockAddr(1), InvalidateKind::Coherence)
            .is_none());
        assert_eq!(c.stats().invalidations_requested, 2);
        assert_eq!(c.stats().invalidations_hit, 1);
    }

    #[test]
    fn invalid_ways_fill_before_eviction() {
        let mut c = one_set_cache(2);
        c.access(BlockAddr(1), AccessType::Read, Cost(1));
        c.access(BlockAddr(2), AccessType::Read, Cost(1));
        c.invalidate(BlockAddr(1), InvalidateKind::Coherence);
        let out = c.access(BlockAddr(3), AccessType::Read, Cost(1));
        assert!(out.evicted.is_none(), "must reuse the invalidated frame");
        assert!(c.contains(BlockAddr(2)));
        assert!(c.contains(BlockAddr(3)));
    }

    #[test]
    fn stored_cost_follows_block() {
        let mut c = one_set_cache(2);
        c.access(BlockAddr(1), AccessType::Read, Cost(9));
        assert_eq!(c.cost_of(BlockAddr(1)), Some(Cost(9)));
        assert!(c.update_cost(BlockAddr(1), Cost(5)));
        assert_eq!(c.cost_of(BlockAddr(1)), Some(Cost(5)));
        assert!(!c.update_cost(BlockAddr(99), Cost(5)));
    }

    #[test]
    fn resident_blocks_iterates_everything() {
        let mut c = Cache::new(Geometry::new(256, 64, 2), Lru::new());
        for b in 0..4u64 {
            c.access(BlockAddr(b), AccessType::Read, Cost(1));
        }
        let mut blocks: Vec<u64> = c.resident_blocks().map(|b| b.0).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1, 2, 3]);
    }
}
