//! Miss-cost representation.
//!
//! Following the paper (Section 2), the cost of a reference that hits is 0
//! and the cost of a miss is any non-negative number. Costs are integers:
//! in the two-static-cost experiments they are `1` and `r`; in the CC-NUMA
//! experiments they are predicted miss latencies in cycles.
//!
//! The *infinite cost ratio* of Section 3.1 is encoded exactly as the paper
//! does: low cost `0`, high cost `1` (see [`CostPair::infinite_ratio`]).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A non-negative miss cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(pub u64);

impl Cost {
    /// The zero cost (a hit, or the "low" side of an infinite cost ratio).
    pub const ZERO: Cost = Cost(0);
    /// The unit cost.
    pub const ONE: Cost = Cost(1);

    /// Saturating subtraction; costs never go negative.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_sub(rhs.0))
    }

    /// Saturating doubling, used by the BCL/DCL depreciation rule
    /// (`Acost -= 2 * c[i]`).
    #[must_use]
    pub fn doubled(self) -> Cost {
        Cost(self.0.saturating_mul(2))
    }

    /// Whether this cost is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Cost {
    fn from(v: u64) -> Self {
        Cost(v)
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

/// A static two-cost configuration: the cost of a low-cost miss and the cost
/// of a high-cost miss (Section 3: low = 1, high = `r`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostPair {
    low: Cost,
    high: Cost,
}

impl CostPair {
    /// A finite cost ratio `r`: low cost 1, high cost `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    #[must_use]
    pub fn ratio(r: u64) -> Self {
        assert!(r > 0, "cost ratio must be positive");
        CostPair {
            low: Cost::ONE,
            high: Cost(r),
        }
    }

    /// The infinite cost ratio: low cost 0, high cost 1 (Section 3.1).
    ///
    /// With a low cost of zero the BCL/DCL depreciation `Acost -= 2*c` is a
    /// no-op, so reserved high-cost blocks are never released by low-cost
    /// victimizations — the theoretical upper bound of cost savings.
    #[must_use]
    pub fn infinite_ratio() -> Self {
        CostPair {
            low: Cost::ZERO,
            high: Cost::ONE,
        }
    }

    /// Explicit low/high costs.
    #[must_use]
    pub fn new(low: Cost, high: Cost) -> Self {
        CostPair { low, high }
    }

    /// The low miss cost.
    #[must_use]
    pub fn low(&self) -> Cost {
        self.low
    }

    /// The high miss cost.
    #[must_use]
    pub fn high(&self) -> Cost {
        self.high
    }

    /// Selects the high or low cost.
    #[must_use]
    pub fn pick(&self, high: bool) -> Cost {
        if high {
            self.high
        } else {
            self.low
        }
    }
}

impl fmt::Display for CostPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == CostPair::infinite_ratio() {
            write!(f, "r=inf")
        } else {
            write!(f, "r={}/{}", self.high, self.low)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Cost(3).saturating_sub(Cost(5)), Cost::ZERO);
        assert_eq!(Cost(5).saturating_sub(Cost(3)), Cost(2));
        assert_eq!(Cost(7).doubled(), Cost(14));
        assert_eq!(Cost(u64::MAX).doubled(), Cost(u64::MAX));
    }

    #[test]
    fn sum_of_costs() {
        let total: Cost = [Cost(1), Cost(2), Cost(3)].into_iter().sum();
        assert_eq!(total, Cost(6));
    }

    #[test]
    fn ratio_pairs() {
        let p = CostPair::ratio(8);
        assert_eq!(p.low(), Cost(1));
        assert_eq!(p.high(), Cost(8));
        assert_eq!(p.pick(true), Cost(8));
        assert_eq!(p.pick(false), Cost(1));
    }

    #[test]
    fn infinite_ratio_is_zero_one() {
        let p = CostPair::infinite_ratio();
        assert_eq!(p.low(), Cost::ZERO);
        assert_eq!(p.high(), Cost::ONE);
        assert_eq!(p.to_string(), "r=inf");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_rejected() {
        let _ = CostPair::ratio(0);
    }
}
