//! Criticality-based cost-sensitive replacement in a uniprocessor — the
//! paper's Section 7 outlook: "assign a high cost to critical load misses
//! and low cost to store misses", since buffered stores hide their miss
//! latency while loads stall the pipeline.
//!
//! A synthetic workload mixes a load-dominated structure (pointer-chased
//! index) with a store-dominated one (log buffer). Costs come from
//! [`CriticalityCostMap`]; DCL then preferentially keeps the load-critical
//! blocks.
//!
//! Run with: `cargo run --release --example critical_loads`

use cost_sensitive_cache::policies::Dcl;
use cost_sensitive_cache::sim::{relative_savings_pct, Cache, CostPair, Geometry, Lru};
use cost_sensitive_cache::trace::cost_map::CostMap;
use cost_sensitive_cache::trace::criticality::CriticalityCostMap;
use cost_sensitive_cache::trace::workloads::synthetic::ZipfRandom;
use cost_sensitive_cache::trace::{Trace, TraceRecord, Workload};

fn main() {
    // Build a uniprocessor trace: Zipf-distributed loads over an index
    // region interleaved with sequential stores to a log region.
    let loads = ZipfRandom {
        refs: 120_000,
        blocks: 4096,
        exponent: 0.8,
        write_fraction: 0.0,
    }
    .generate(11);
    let mut trace = Trace::new(1);
    let mut log_ptr = 0u64;
    for (i, rec) in loads.iter().enumerate() {
        trace.push(*rec);
        if i % 3 == 0 {
            // A store to the streaming log (write-dominated blocks).
            let addr = cost_sensitive_cache::sim::Addr((1 << 30) + (log_ptr % 8192) * 64);
            trace.push(TraceRecord::write(rec.proc, addr));
            log_ptr += 1;
        }
    }

    // Classify blocks: load-dominated ones get the high (critical) cost.
    let costs = CriticalityCostMap::from_trace(&trace, CostPair::ratio(8), 0.7);
    println!(
        "classified blocks: {:.1}% load-critical\n",
        costs.critical_fraction() * 100.0
    );

    // Simulate a 32 KB 4-way L1D under LRU and DCL.
    let geom = Geometry::new(32 * 1024, 64, 4);
    let mut lru = Cache::new(geom, Lru::new());
    let mut dcl = Cache::new(geom, Dcl::new(&geom));
    for rec in &trace {
        let b = rec.block(64);
        lru.access(b, rec.op, costs.cost_of(b));
        dcl.access(b, rec.op, costs.cost_of(b));
    }

    let (l, d) = (lru.stats(), dcl.stats());
    println!(
        "LRU:  misses {:>7}  load-weighted cost {:>8}",
        l.misses, l.aggregate_cost
    );
    println!(
        "DCL:  misses {:>7}  load-weighted cost {:>8}",
        d.misses, d.aggregate_cost
    );
    println!(
        "\nDCL cuts the load-criticality cost by {:.1}% (miss-count change: {:+.1}%)",
        relative_savings_pct(l.aggregate_cost, d.aggregate_cost),
        100.0 * (d.misses as f64 - l.misses as f64) / l.misses as f64
    );
    println!("Store-dominated log blocks are sacrificed to keep hot load blocks resident.");
}
