//! Quickstart: reserve an expensive cache block the way the paper does.
//!
//! Builds the paper's basic L2 (16 KB, 4-way, 64-byte blocks), runs the
//! same reference stream under LRU and under each cost-sensitive policy,
//! and prints the aggregate miss cost of each — the metric the whole paper
//! is about.
//!
//! Run with: `cargo run --example quickstart`

use cost_sensitive_cache::policies::{Acl, Bcl, Dcl, GreedyDual};
use cost_sensitive_cache::sim::{
    AccessType, BlockAddr, Cache, Cost, Geometry, Lru, ReplacementPolicy,
};

/// A little scenario: one "remote" block (miss cost 8) is re-read
/// periodically while a stream of "local" blocks (miss cost 1) sweeps
/// through the same cache sets.
fn run<P: ReplacementPolicy>(name: &str, policy: P) -> Cost {
    let geom = Geometry::new(16 * 1024, 64, 4);
    let mut cache = Cache::new(geom, policy);

    let remote = BlockAddr(0); // cost 8 when it misses
    let sets = geom.num_sets() as u64;
    cache.access(remote, AccessType::Read, Cost(8));
    for round in 0..64u64 {
        // A conflict stream marching over set 0 (where the remote block
        // lives) and its neighbours.
        for k in 0..6u64 {
            let local = BlockAddr((round * 6 + k) * sets + sets); // maps to set 0
            cache.access(local, AccessType::Read, Cost(1));
        }
        // The expensive block comes back after the sweep: under plain LRU
        // it has been evicted every time; a cost-sensitive policy reserves
        // it and pays a cheap miss instead.
        cache.access(remote, AccessType::Read, Cost(8));
    }

    let stats = cache.stats();
    println!(
        "{name:<4}  misses: {:>4}  aggregate cost: {:>4}",
        stats.misses, stats.aggregate_cost
    );
    stats.aggregate_cost
}

fn main() {
    println!("Cost-sensitive replacement on a conflict-heavy scenario");
    println!("(16 KB 4-way L2; one cost-8 block vs a stream of cost-1 blocks)\n");
    let geom = Geometry::new(16 * 1024, 64, 4);

    let lru = run("LRU", Lru::new());
    let gd = run("GD", GreedyDual::new(&geom));
    let bcl = run("BCL", Bcl::new(&geom));
    let dcl = run("DCL", Dcl::new(&geom));
    let acl = run("ACL", Acl::new(&geom));

    println!();
    for (name, cost) in [("GD", gd), ("BCL", bcl), ("DCL", dcl), ("ACL", acl)] {
        let saved = 100.0 * (lru.0 as f64 - cost.0 as f64) / lru.0 as f64;
        println!("{name:<4} saves {saved:>5.1}% of LRU's aggregate cost");
    }
}
