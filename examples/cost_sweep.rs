//! Sweep the cost ratio and high-cost access fraction over a real
//! workload trace — a miniature of the paper's Figure 3.
//!
//! Generates the Ocean-like kernel, samples one processor (plus foreign
//! writes, which invalidate), and prints the relative cost savings of DCL
//! over LRU for a grid of (HAF, r) points under random cost mapping.
//!
//! Run with: `cargo run --release --example cost_sweep`

use cost_sensitive_cache::harness::{
    run_sampled, CostRatio, LruMissProfile, PolicyKind, TraceSimConfig,
};
use cost_sensitive_cache::sim::relative_savings_pct;
use cost_sensitive_cache::trace::cost_map::RandomCostMap;
use cost_sensitive_cache::trace::workloads::OceanLike;
use cost_sensitive_cache::trace::{representative_processor, SampledTrace, Workload};

fn main() {
    let workload = OceanLike::default();
    println!("generating {} trace ...", workload.name());
    let trace = workload.generate(2003);
    let sample = representative_processor(&trace);
    let sampled = SampledTrace::from_trace(&trace, sample);
    println!(
        "sample processor {sample}: {} own refs, {} foreign writes\n",
        sampled.own_refs(),
        sampled.foreign_writes()
    );

    let cfg = TraceSimConfig::paper_basic();
    let baseline = LruMissProfile::collect(&sampled, cfg);

    let hafs = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8];
    let ratios = [
        CostRatio::Finite(2),
        CostRatio::Finite(8),
        CostRatio::Finite(32),
        CostRatio::Infinite,
    ];

    print!("{:>6}", "HAF");
    for r in ratios {
        print!("{:>9}", r.to_string());
    }
    println!("   (DCL savings over LRU, %)");
    for haf in hafs {
        print!("{haf:>6.2}");
        for ratio in ratios {
            let map = RandomCostMap::new(haf, ratio.pair(), 99);
            let lru_cost = baseline.aggregate_cost(&map);
            let run = run_sampled(&sampled, &map, PolicyKind::Dcl, cfg);
            print!(
                "{:>9.2}",
                relative_savings_pct(lru_cost, run.aggregate_cost())
            );
        }
        println!();
    }
    println!("\nExpected shape (paper, Fig. 3): peak near HAF 0.1-0.3, growth with r.");
}
