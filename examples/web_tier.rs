//! Cost-sensitive replacement beyond CPU caches: a CDN-edge-like object
//! cache where misses have wildly different backend costs.
//!
//! The paper argues (Section 7) that its algorithms apply to "various
//! kinds of storage where non-uniform cost functions are involved". This
//! example models an edge cache in front of three backends — a local disk
//! (cheap), a regional origin (moderate), and a cross-continent origin
//! (expensive) — and compares LRU, GD, and DCL on a Zipf-like request
//! stream. Cost = backend fetch cost per miss.
//!
//! Run with: `cargo run --release --example web_tier`

use cost_sensitive_cache::policies::{Dcl, GreedyDual};
use cost_sensitive_cache::sim::{
    AccessType, BlockAddr, Cache, Cost, Geometry, Lru, ReplacementPolicy,
};
use cost_sensitive_cache::trace::workloads::synthetic::ZipfRandom;
use cost_sensitive_cache::trace::Workload;

/// Backend of an object, derived from its id.
fn backend_cost(block: BlockAddr) -> Cost {
    match block.0 % 10 {
        // 60% of objects on local disk: cheap refills.
        0..=5 => Cost(1),
        // 30% at the regional origin.
        6..=8 => Cost(10),
        // 10% across the continent.
        _ => Cost(50),
    }
}

fn run<P: ReplacementPolicy>(name: &str, policy: P, requests: &[BlockAddr]) -> (u64, u64) {
    // Model the edge cache as 4096 object slots, 8-way associative.
    let geom = Geometry::new(4096 * 64, 64, 8);
    let mut cache = Cache::new(geom, policy);
    for &obj in requests {
        cache.access(obj, AccessType::Read, backend_cost(obj));
    }
    let s = cache.stats();
    println!(
        "{name:<4}  hit rate {:>5.1}%   backend cost {:>8}",
        s.hit_rate() * 100.0,
        s.aggregate_cost
    );
    (s.misses, s.aggregate_cost.0)
}

fn main() {
    println!("Edge object cache with non-uniform backend costs\n");
    // A Zipf-skewed request stream over 40k objects.
    let stream = ZipfRandom {
        refs: 400_000,
        blocks: 40_000,
        exponent: 0.9,
        write_fraction: 0.0,
    };
    let requests: Vec<BlockAddr> = stream.generate(7).iter().map(|r| r.block(64)).collect();

    let geom = Geometry::new(4096 * 64, 64, 8);
    let (_, lru_cost) = run("LRU", Lru::new(), &requests);
    let (_, gd_cost) = run("GD", GreedyDual::new(&geom), &requests);
    let (_, dcl_cost) = run("DCL", Dcl::new(&geom), &requests);

    println!();
    for (name, cost) in [("GD", gd_cost), ("DCL", dcl_cost)] {
        println!(
            "{name:<4} cuts backend cost by {:.1}% vs LRU",
            100.0 * (lru_cost as f64 - cost as f64) / lru_cost as f64
        );
    }
    println!("\nLocality-centric DCL trades a slightly lower hit rate for far cheaper misses;");
    println!("cost-centric GD pushes further when cost differentials are this wide (50:1).");
}
