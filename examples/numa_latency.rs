//! Latency-sensitive replacement on the CC-NUMA machine (Section 4).
//!
//! Runs the Barnes-like kernel on the 16-node Table 4 machine with plain
//! LRU and with DCL at the L2, where each block's miss cost is its last
//! measured miss latency, and prints execution times and miss behaviour.
//!
//! Run with: `cargo run --release --example numa_latency`

use cost_sensitive_cache::harness::numa_exp::{rsim_suite, run_numa};
use cost_sensitive_cache::harness::PolicyKind;
use cost_sensitive_cache::numa::Clock;

fn main() {
    let suite = rsim_suite();
    let bench = &suite[0]; // barnes
    println!(
        "workload: {} ({} refs across 16 processors)\n",
        bench.name,
        bench.trace.total_refs()
    );

    for clock in [Clock::Mhz500, Clock::Ghz1] {
        println!("--- {} ---", clock.label());
        let lru = run_numa(&bench.trace, clock, PolicyKind::Lru);
        for policy in [PolicyKind::Lru, PolicyKind::Dcl, PolicyKind::Acl] {
            let res = if policy == PolicyKind::Lru {
                lru.clone()
            } else {
                run_numa(&bench.trace, clock, policy)
            };
            let delta = 100.0 * (lru.exec_time_ps as f64 - res.exec_time_ps as f64)
                / lru.exec_time_ps as f64;
            println!(
                "{:<4}  exec {:>8.1} us   misses {:>7}   avg miss latency {:>6.0} ns   vs LRU {:+.2}%",
                policy.label(),
                res.exec_time_us(),
                res.total_misses(),
                res.avg_miss_latency_ns(),
                delta,
            );
        }
        println!();
    }
    println!("The paper's Table 5 reports up to ~18% execution-time reduction for DCL/ACL.");
}
