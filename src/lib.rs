//! # cost-sensitive-cache
//!
//! A reproduction of **“Cost-Sensitive Cache Replacement Algorithms”**
//! (Jaeheon Jeong and Michel Dubois, HPCA 2003) as a Rust workspace.
//!
//! Cache replacement traditionally minimizes the *miss count*; this work
//! minimizes the *aggregate miss cost* when misses are not equally
//! expensive (remote vs. local memory in a CC-NUMA machine, bandwidth,
//! power, …). Four on-line policies are provided — GreedyDual and the
//! paper's BCL / DCL / ACL family built on LRU block *reservations* with
//! cost *depreciation* — together with every substrate needed to evaluate
//! them the way the paper does.
//!
//! This crate is a facade: it re-exports the workspace's crates.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`sim`] | `cache-sim` | set-associative cache engine, policies' substrate |
//! | [`policies`] | `csr` | GD, BCL, DCL, ACL, ETD, offline baselines, HW model |
//! | [`cache`] | `csr-cache` | concurrent sharded KV cache driven by the policies |
//! | [`obs`] | `csr-obs` | metrics registry, exporters, decision observers |
//! | [`serve`] | `csr-serve` | TCP cache server with measured miss costs |
//! | [`trace`] | `mem-trace` | SPLASH-2-like workloads, first touch, cost maps |
//! | [`numa`] | `numa-sim` | execution-driven CC-NUMA simulator (Section 4) |
//! | [`harness`] | `csr-harness` | experiment runners for every table/figure |
//!
//! # Quick start
//!
//! Measure DCL's cost savings over LRU in the paper's basic trace-driven
//! setup:
//!
//! ```
//! use cost_sensitive_cache::harness::{
//!     run_sampled, LruMissProfile, PolicyKind, TraceSimConfig,
//! };
//! use cost_sensitive_cache::sim::{relative_savings_pct, CostPair};
//! use cost_sensitive_cache::trace::cost_map::RandomCostMap;
//! use cost_sensitive_cache::trace::workloads::synthetic::UniformRandom;
//! use cost_sensitive_cache::trace::{ProcId, SampledTrace, Workload};
//!
//! let workload = UniformRandom { refs: 50_000, blocks: 2048, procs: 2, write_fraction: 0.3 };
//! let sampled = SampledTrace::from_trace(&workload.generate(1), ProcId(0));
//! let cfg = TraceSimConfig::paper_basic();
//! let costs = RandomCostMap::new(0.2, CostPair::ratio(8), 7);
//!
//! let lru = LruMissProfile::collect(&sampled, cfg).aggregate_cost(&costs);
//! let dcl = run_sampled(&sampled, &costs, PolicyKind::Dcl, cfg).aggregate_cost();
//! assert!(relative_savings_pct(lru, dcl) > 0.0);
//! ```
//!
//! Or use the policies as a concurrent key-value cache ([`cache`]):
//!
//! ```
//! use cost_sensitive_cache::cache::{CsrCache, Policy};
//!
//! let cache: CsrCache<u64, String> = CsrCache::builder(1024)
//!     .policy(Policy::Acl)
//!     .cost_fn(|_k: &u64, v: &String| 1 + v.len() as u64)
//!     .build();
//! cache.insert(7, "expensive remote row".to_string());
//! assert!(cache.get(&7).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The set-associative cache simulator substrate (`cache-sim`).
pub mod sim {
    pub use cache_sim::*;
}

/// The cost-sensitive replacement policies (`csr`).
pub mod policies {
    pub use csr::*;
}

/// The concurrent, sharded, cost-aware key-value cache (`csr-cache`).
pub mod cache {
    pub use csr_cache::*;
}

/// Observability: metrics, exporters, decision observers (`csr-obs`).
pub mod obs {
    pub use csr_obs::*;
}

/// The TCP cache server with measured miss costs (`csr-serve`).
pub mod serve {
    pub use csr_serve::*;
}

/// Traces, workloads and cost mappings (`mem-trace`).
pub mod trace {
    pub use mem_trace::*;
}

/// The execution-driven CC-NUMA simulator (`numa-sim`).
pub mod numa {
    pub use numa_sim::*;
}

/// Experiment machinery (`csr-harness`).
pub mod harness {
    pub use csr_harness::*;
}
